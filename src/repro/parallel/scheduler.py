"""The shard-scheduler layer: one registry for every fan-out in the system.

Before this layer existed, each parallel consumer hard-wired its own
executor: the training backend built a ``ThreadExecutor``, batch serving
defaulted to ``SerialExecutor``, and the grid search took whatever instance
it was handed.  The scheduler unifies them: executors are registered by name
(``"serial"``, ``"thread"``, ``"process"``, ``"cluster"``),
:func:`resolve_executor` turns
a name *or* an instance into a ready executor, and :class:`ShardScheduler`
adds lazy construction plus lifecycle so a component can declare "I fan out
on <name>" without paying for a pool until the first shard runs.

The ``"process"`` entry resolves to
:class:`~repro.parallel.shared_memory.SharedMemoryProcessExecutor`, which is
a drop-in process pool for pickled tasks *and* offers shared-memory array
publication — the training backend detects that capability and ships
``(row_range, shm_names)`` descriptors instead of arrays.

The ``"cluster"`` entry resolves to
:class:`~repro.parallel.cluster.ClusterExecutor` — the same publication
capability over RPC agent nodes, loopback-spawned or remote.  Registering a
further execution substrate is one :func:`register_executor` call; every
consumer — training, serving, grid search — can then select it by name.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.parallel.cluster import ClusterExecutor
from repro.parallel.executor import SerialExecutor, ThreadExecutor
from repro.parallel.shared_memory import SharedMemoryProcessExecutor

#: An executor factory: ``factory(max_workers)`` -> executor instance.
ExecutorFactory = Callable[[Optional[int]], Any]

_EXECUTOR_FACTORIES: Dict[str, ExecutorFactory] = {
    "serial": lambda max_workers: SerialExecutor(),
    "thread": lambda max_workers: ThreadExecutor(max_workers=max_workers),
    "process": lambda max_workers: SharedMemoryProcessExecutor(max_workers=max_workers),
    # max_workers maps onto the node count: "fan out on cluster at width 3"
    # spawns (or, with explicit addresses, expects) three agent nodes.
    "cluster": lambda max_workers: ClusterExecutor(n_nodes=max_workers),
}


def register_executor(name: str, factory: ExecutorFactory) -> None:
    """Register (or replace) an executor factory under ``name``.

    ``factory`` receives the requested ``max_workers`` (possibly ``None``)
    and returns an object with the executor protocol: ``map``, ``starmap``,
    ``shutdown``, and the context-manager methods.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError("executor name must be a non-empty string")
    if not callable(factory):
        raise ConfigurationError("executor factory must be callable")
    _EXECUTOR_FACTORIES[name] = factory


def available_executors() -> List[str]:
    """Names of the registered executors."""
    return sorted(_EXECUTOR_FACTORIES)


def resolve_executor(executor: Any, max_workers: Optional[int] = None) -> Any:
    """Turn an executor name into an instance; pass instances through.

    Parameters
    ----------
    executor:
        A registered name (``"serial"``, ``"thread"``, ``"process"``,
        ``"cluster"``, or anything added via :func:`register_executor`), or
        an already-built
        executor instance (returned unchanged).
    max_workers:
        Pool size handed to the factory when ``executor`` is a name.  It is
        an error to combine it with an instance — the instance's own pool
        size would silently win otherwise.

    Notes
    -----
    When given a *name*, the caller owns the returned executor and should
    shut it down; when given an instance, the original owner keeps that
    responsibility.
    """
    if isinstance(executor, str):
        try:
            factory = _EXECUTOR_FACTORIES[executor]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown executor {executor!r}; available: {available_executors()}"
            ) from exc
        return factory(max_workers)
    if not hasattr(executor, "starmap"):
        raise ConfigurationError(
            f"executor must be a registered name ({available_executors()}) or an "
            f"instance exposing starmap, got {executor!r}"
        )
    if max_workers is not None:
        raise ConfigurationError(
            "max_workers cannot be combined with an executor instance; "
            "size the instance at construction time"
        )
    return executor


class ShardScheduler:
    """A named executor with lazy construction and owned lifecycle.

    Components that fan shards out hold one scheduler instead of a concrete
    executor: the scheduler resolves the configured name through the
    registry on first use, exposes order-stable ``map``/``starmap``, and
    tears the executor down on :meth:`shutdown` (after which the next use
    transparently builds a fresh one).  Passing an existing executor
    instance is also supported; the scheduler then delegates without taking
    ownership — :meth:`shutdown` leaves a borrowed executor running.
    """

    def __init__(self, executor: Any = "thread", max_workers: Optional[int] = None) -> None:
        self._owns_executor = isinstance(executor, str)
        if self._owns_executor:
            if executor not in _EXECUTOR_FACTORIES:
                raise ConfigurationError(
                    f"unknown executor {executor!r}; available: {available_executors()}"
                )
            self._spec = executor
            self._executor: Any = None
        else:
            if max_workers is not None:
                raise ConfigurationError(
                    "max_workers cannot be combined with an executor instance; "
                    "size the instance at construction time"
                )
            self._spec = getattr(type(executor), "__name__", str(executor))
            self._executor = resolve_executor(executor)
        self._max_workers = max_workers

    @property
    def executor_name(self) -> str:
        """The configured executor name (or the instance's type name)."""
        return self._spec

    @property
    def owns_executor(self) -> bool:
        """Whether :meth:`shutdown` tears the executor down.

        True iff the scheduler was configured with a *name* (it builds and
        owns the executor); a borrowed instance is never shut down here.
        """
        return self._owns_executor

    @property
    def executor(self) -> Any:
        """The live executor, constructing it on first access."""
        if self._executor is None:
            self._executor = _EXECUTOR_FACTORIES[self._spec](self._max_workers)
        return self._executor

    @property
    def live_executor(self) -> Any:
        """The executor if one is currently built, else ``None``.

        Unlike :attr:`executor` this never constructs — cleanup paths use it
        to avoid spinning up a pool just to shut it down.
        """
        return self._executor

    def map(self, function: Callable[..., Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``function`` to each item through the executor, order-stable."""
        return self.executor.map(function, items)

    def starmap(
        self, function: Callable[..., Any], argument_tuples: Iterable[Sequence[Any]]
    ) -> List[Any]:
        """Apply ``function(*args)`` through the executor, order-stable."""
        return self.executor.starmap(function, argument_tuples)

    def shutdown(self) -> None:
        """Release the owned executor (a later use recreates it).

        Idempotent — a second call (or a call on a scheduler that never
        built its executor) is a no-op — and never touches a borrowed
        instance: the owner that passed it in keeps its lifecycle.
        """
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ShardScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self._executor is not None else "lazy"
        return f"{type(self).__name__}(executor={self._spec!r}, {state})"
