"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class when they do not care about the specific failure
mode.  The more specific subclasses mirror the major subsystems: data
handling, model configuration / fitting, and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class DataError(ReproError):
    """Raised when an interaction matrix or dataset is malformed.

    Examples include: negative user/item indices, duplicate interactions
    passed to a constructor that forbids them, or an empty matrix where a
    non-empty one is required.
    """


class ConfigurationError(ReproError):
    """Raised when a model or experiment is configured with invalid values.

    Examples include: a non-positive number of co-clusters, a negative
    regularisation strength, or line-search constants outside ``(0, 1)``.
    """


class NotFittedError(ReproError):
    """Raised when a model is used for prediction before being fitted."""


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops without converging."""


class EvaluationError(ReproError):
    """Raised when an evaluation protocol cannot be carried out.

    Examples include: requesting recall@M for a user with no held-out
    positives when the protocol forbids it, or a train/test split that
    leaves no test users.
    """
