"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class when they do not care about the specific failure
mode.  The more specific subclasses mirror the major subsystems: data
handling, model configuration / fitting, and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class DataError(ReproError):
    """Raised when an interaction matrix or dataset is malformed.

    Examples include: negative user/item indices, duplicate interactions
    passed to a constructor that forbids them, or an empty matrix where a
    non-empty one is required.
    """


class ConfigurationError(ReproError):
    """Raised when a model or experiment is configured with invalid values.

    Examples include: a non-positive number of co-clusters, a negative
    regularisation strength, or line-search constants outside ``(0, 1)``.
    """


class NotFittedError(ReproError):
    """Raised when a model is used for prediction before being fitted."""


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops without converging."""


class EvaluationError(ReproError):
    """Raised when an evaluation protocol cannot be carried out.

    Examples include: requesting recall@M for a user with no held-out
    positives when the protocol forbids it, or a train/test split that
    leaves no test users.
    """


class ExecutorShutDownError(ReproError, RuntimeError):
    """Raised when work is submitted to an executor after ``shutdown()``.

    Every registered executor (serial, thread, process, shared-memory,
    cluster) raises this from ``map``/``starmap`` — and from array
    publication where supported — once it has been shut down, instead of
    leaking whichever raw error its backing pool produces.  Inherits
    :class:`RuntimeError` because that is what ``concurrent.futures`` pools
    raise for the same condition, so pre-existing callers that caught
    ``RuntimeError`` keep working.
    """


class WorkerCrashError(ReproError):
    """Raised when an executor's worker dies instead of returning a result.

    Distinct from a *task* exception (which propagates as itself): this
    error means the worker process or cluster node vanished — killed,
    segfaulted, or unreachable past the task timeout.  ``executor`` names
    the executor type and ``task_index`` the submission-order index of the
    task whose worker died (``None`` when the crash cannot be pinned to one
    task).  On the cluster executor the condition is retryable — in-flight
    shards re-dispatch to surviving nodes — so this surfaces only once the
    retry budget or the nodes themselves are exhausted.
    """

    def __init__(self, message: str, *, executor: str = "", task_index: "int | None" = None):
        super().__init__(message)
        self.executor = executor
        self.task_index = task_index
