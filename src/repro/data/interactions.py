"""One-class interaction matrix.

The whole paper operates on a binary user-item matrix ``R`` where
``r_ui = 1`` records a positive example (a purchase, a rating >= 3, an
article saved to a collection) and ``r_ui = 0`` is *unknown*, never negative.
:class:`InteractionMatrix` is a thin, validated wrapper around a SciPy CSR
matrix that provides exactly the views the algorithms need:

* per-user positive item lists and per-item positive user lists,
* fast membership tests for (user, item) pairs,
* sub-sampling of positives (for the Figure 7 scaling experiment),
* removal/addition of interaction sets (for train/test splitting).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DataError
from repro.utils.rng import RandomStateLike, ensure_rng


class InteractionMatrix:
    """A binary, one-class user-item interaction matrix.

    Parameters
    ----------
    matrix:
        Anything convertible to a SciPy sparse matrix of shape
        ``(n_users, n_items)``.  Non-zero entries are treated as positive
        examples; their stored values are normalised to ``1.0``.
    user_labels, item_labels:
        Optional human-readable labels (client names, movie titles) used by
        the explanation engine.  Lengths must match the matrix dimensions.

    Notes
    -----
    The matrix is stored in CSR form (fast per-user access) and a CSC copy is
    materialised lazily the first time per-item access is required.
    """

    def __init__(
        self,
        matrix: sp.spmatrix | np.ndarray,
        user_labels: Optional[Sequence[str]] = None,
        item_labels: Optional[Sequence[str]] = None,
    ) -> None:
        csr = sp.csr_matrix(matrix, dtype=np.float64)
        if csr.ndim != 2:
            raise DataError("interaction matrix must be two-dimensional")
        if csr.shape[0] == 0 or csr.shape[1] == 0:
            raise DataError("interaction matrix must have at least one user and one item")
        if csr.nnz and csr.data.min() < 0:
            raise DataError("interaction matrix must not contain negative values")
        csr.data[:] = 1.0
        csr.eliminate_zeros()
        csr.sum_duplicates()
        csr.data[:] = 1.0
        self._csr = csr
        self._csc: Optional[sp.csc_matrix] = None
        self._pair_set: Optional[Set[Tuple[int, int]]] = None

        self.user_labels = self._check_labels(user_labels, csr.shape[0], "user_labels")
        self.item_labels = self._check_labels(item_labels, csr.shape[1], "item_labels")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[int, int]],
        n_users: Optional[int] = None,
        n_items: Optional[int] = None,
        user_labels: Optional[Sequence[str]] = None,
        item_labels: Optional[Sequence[str]] = None,
    ) -> "InteractionMatrix":
        """Build a matrix from an iterable of ``(user, item)`` index pairs.

        ``n_users``/``n_items`` default to one past the largest index seen;
        providing them explicitly allows users or items with no interactions.
        """
        users: List[int] = []
        items: List[int] = []
        for user, item in pairs:
            if user < 0 or item < 0:
                raise DataError(f"indices must be non-negative, got ({user}, {item})")
            users.append(int(user))
            items.append(int(item))
        if not users and (n_users is None or n_items is None):
            raise DataError("cannot infer matrix shape from an empty pair list")
        shape_users = n_users if n_users is not None else max(users) + 1
        shape_items = n_items if n_items is not None else max(items) + 1
        if users and (max(users) >= shape_users or max(items) >= shape_items):
            raise DataError("an interaction index exceeds the declared matrix shape")
        data = np.ones(len(users), dtype=np.float64)
        csr = sp.csr_matrix((data, (users, items)), shape=(shape_users, shape_items))
        return cls(csr, user_labels=user_labels, item_labels=item_labels)

    @classmethod
    def from_validated_csr(
        cls,
        csr: sp.csr_matrix,
        user_labels: Optional[Sequence[str]] = None,
        item_labels: Optional[Sequence[str]] = None,
    ) -> "InteractionMatrix":
        """Wrap an already-canonical binary CSR **without copying or writing**.

        The normal constructor normalises its input in place (data rewritten
        to 1.0, duplicates summed, zeros eliminated), which both copies the
        arrays and mutates the buffers.  The shared-memory serving path
        cannot afford either: worker processes rebuild the training matrix
        over read-only views of segments published by another process.  This
        trusted constructor therefore skips normalisation entirely — the
        caller guarantees ``csr`` is a canonical CSR whose data is all 1.0
        (e.g. it came out of :meth:`csr` on a validated matrix).
        """
        if not sp.issparse(csr) or csr.format != "csr":
            raise DataError("from_validated_csr requires a scipy CSR matrix")
        instance = cls.__new__(cls)
        instance._csr = csr
        instance._csc = None
        instance._pair_set = None
        instance.user_labels = cls._check_labels(user_labels, csr.shape[0], "user_labels")
        instance.item_labels = cls._check_labels(item_labels, csr.shape[1], "item_labels")
        return instance

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        user_labels: Optional[Sequence[str]] = None,
        item_labels: Optional[Sequence[str]] = None,
    ) -> "InteractionMatrix":
        """Build a matrix from a dense 0/1 array (used by the toy examples)."""
        return cls(np.asarray(dense, dtype=float), user_labels=user_labels, item_labels=item_labels)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_users(self) -> int:
        """Number of rows (users / clients)."""
        return self._csr.shape[0]

    @property
    def n_items(self) -> int:
        """Number of columns (items / products)."""
        return self._csr.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_users, n_items)``."""
        return self._csr.shape

    @property
    def nnz(self) -> int:
        """Number of positive examples ``|{(u, i) : r_ui = 1}|``."""
        return self._csr.nnz

    @property
    def density(self) -> float:
        """Fraction of the matrix that is positive."""
        return self.nnz / float(self.n_users * self.n_items)

    def csr(self) -> sp.csr_matrix:
        """Return the underlying CSR matrix (shared, do not mutate)."""
        return self._csr

    def csc(self) -> sp.csc_matrix:
        """Return a CSC view (built lazily, cached)."""
        if self._csc is None:
            self._csc = self._csr.tocsc()
        return self._csc

    def toarray(self) -> np.ndarray:
        """Densify the matrix (only sensible for small examples and tests)."""
        return self._csr.toarray()

    # ------------------------------------------------------------------ #
    # Access patterns used by the algorithms
    # ------------------------------------------------------------------ #
    def items_of_user(self, user: int) -> np.ndarray:
        """Indices of items with ``r_ui = 1`` for ``user`` (sorted)."""
        self._check_user(user)
        start, stop = self._csr.indptr[user], self._csr.indptr[user + 1]
        return self._csr.indices[start:stop].copy()

    def users_of_item(self, item: int) -> np.ndarray:
        """Indices of users with ``r_ui = 1`` for ``item`` (sorted)."""
        self._check_item(item)
        csc = self.csc()
        start, stop = csc.indptr[item], csc.indptr[item + 1]
        return csc.indices[start:stop].copy()

    def user_degrees(self) -> np.ndarray:
        """Number of positives per user, shape ``(n_users,)``."""
        return np.diff(self._csr.indptr).astype(np.int64)

    def item_degrees(self) -> np.ndarray:
        """Number of positives per item, shape ``(n_items,)``."""
        return np.diff(self.csc().indptr).astype(np.int64)

    def pairs(self) -> np.ndarray:
        """All positive pairs as an ``(nnz, 2)`` integer array ``[user, item]``."""
        coo = self._csr.tocoo()
        return np.column_stack([coo.row.astype(np.int64), coo.col.astype(np.int64)])

    def iter_pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over positive ``(user, item)`` pairs."""
        coo = self._csr.tocoo()
        for user, item in zip(coo.row, coo.col):
            yield int(user), int(item)

    def contains(self, user: int, item: int) -> bool:
        """Return ``True`` when ``r_ui = 1``."""
        self._check_user(user)
        self._check_item(item)
        if self._pair_set is None:
            self._pair_set = {(int(u), int(i)) for u, i in self.iter_pairs()}
        return (user, item) in self._pair_set

    def label_of_user(self, user: int) -> str:
        """Human-readable label of ``user`` (falls back to ``"user <u>"``)."""
        self._check_user(user)
        if self.user_labels is not None:
            return self.user_labels[user]
        return f"user {user}"

    def label_of_item(self, item: int) -> str:
        """Human-readable label of ``item`` (falls back to ``"item <i>"``)."""
        self._check_item(item)
        if self.item_labels is not None:
            return self.item_labels[item]
        return f"item {item}"

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def subsample(self, fraction: float, random_state: RandomStateLike = None) -> "InteractionMatrix":
        """Keep a uniformly random ``fraction`` of the positive examples.

        This mirrors the Figure 7 protocol: "increasing fractions of the
        Netflix dataset (i.e. non-zero entries), chosen uniformly".  The
        matrix shape (users and items) is preserved.
        """
        if not 0 < fraction <= 1:
            raise DataError(f"fraction must lie in (0, 1], got {fraction}")
        if fraction == 1.0:
            return self.copy()
        rng = ensure_rng(random_state)
        pairs = self.pairs()
        keep = max(1, int(round(fraction * len(pairs))))
        chosen = rng.choice(len(pairs), size=keep, replace=False)
        selected = pairs[np.sort(chosen)]
        data = np.ones(len(selected), dtype=np.float64)
        csr = sp.csr_matrix(
            (data, (selected[:, 0], selected[:, 1])), shape=self.shape
        )
        return InteractionMatrix(csr, user_labels=self.user_labels, item_labels=self.item_labels)

    def without_pairs(self, pairs: Iterable[Tuple[int, int]]) -> "InteractionMatrix":
        """Return a copy with the given positive pairs removed (set to unknown)."""
        removal = sp.lil_matrix(self.shape, dtype=np.float64)
        for user, item in pairs:
            self._check_user(user)
            self._check_item(item)
            removal[user, item] = 1.0
        remaining = self._csr - self._csr.multiply(removal.tocsr())
        remaining = sp.csr_matrix(remaining)
        remaining.eliminate_zeros()
        return InteractionMatrix(remaining, user_labels=self.user_labels, item_labels=self.item_labels)

    def extended_with(
        self,
        pairs: Iterable[Tuple[int, int]],
        n_new_users: int = 0,
        n_new_items: int = 0,
        new_user_labels: Optional[Sequence[str]] = None,
        new_item_labels: Optional[Sequence[str]] = None,
    ) -> "InteractionMatrix":
        """Return a larger matrix with extra users/items and interactions.

        The incremental-refit path accumulates deltas — batches of new
        positive pairs that may reference users and items beyond the current
        shape.  This appends ``n_new_users`` empty rows and ``n_new_items``
        empty columns and then sets ``r_ui = 1`` for every pair, all in CSR
        form:

        * widening to ``n_items + n_new_items`` columns reuses the existing
          ``(data, indices, indptr)`` buffers — CSR column count is purely
          declarative, so no copy happens;
        * appending empty rows extends ``indptr`` with its last value;
        * the delta pairs become their own CSR which is added sparsely.

        The original matrix is never densified and never mutated.  Pairs
        that duplicate existing interactions are idempotent (the result is
        re-binarised).  Pair indices must lie inside the *extended* shape.
        """
        if n_new_users < 0 or n_new_items < 0:
            raise DataError("n_new_users and n_new_items must be non-negative")
        n_users = self.n_users + int(n_new_users)
        n_items = self.n_items + int(n_new_items)

        users: List[int] = []
        items: List[int] = []
        for user, item in pairs:
            user, item = int(user), int(item)
            if user < 0 or item < 0:
                raise DataError(f"indices must be non-negative, got ({user}, {item})")
            if user >= n_users or item >= n_items:
                raise DataError(
                    f"pair ({user}, {item}) exceeds the extended shape "
                    f"({n_users}, {n_items})"
                )
            users.append(user)
            items.append(item)

        base = self._csr
        widened = sp.csr_matrix(
            (base.data, base.indices, base.indptr), shape=(self.n_users, n_items)
        )
        if n_new_users:
            tail = np.full(n_new_users, base.indptr[-1], dtype=base.indptr.dtype)
            indptr = np.concatenate([base.indptr, tail])
            widened = sp.csr_matrix(
                (base.data, base.indices, indptr), shape=(n_users, n_items)
            )
        if users:
            delta = sp.csr_matrix(
                (np.ones(len(users), dtype=np.float64), (users, items)),
                shape=(n_users, n_items),
            )
            combined = (widened + delta).tocsr()
        else:
            combined = widened.copy()
        combined.data[:] = 1.0
        combined.sum_duplicates()
        combined.data[:] = 1.0

        user_labels = self._extend_labels(
            self.user_labels, n_new_users, new_user_labels, "new_user_labels", "user"
        )
        item_labels = self._extend_labels(
            self.item_labels, n_new_items, new_item_labels, "new_item_labels", "item"
        )
        return InteractionMatrix.from_validated_csr(
            combined, user_labels=user_labels, item_labels=item_labels
        )

    def copy(self) -> "InteractionMatrix":
        """Deep copy of the interaction matrix (labels are shared)."""
        return InteractionMatrix(
            self._csr.copy(), user_labels=self.user_labels, item_labels=self.item_labels
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InteractionMatrix(n_users={self.n_users}, n_items={self.n_items}, "
            f"nnz={self.nnz}, density={self.density:.4f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InteractionMatrix):
            return NotImplemented
        if self.shape != other.shape:
            return False
        return (self._csr != other._csr).nnz == 0

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _extend_labels(
        existing: Optional[List[str]],
        n_new: int,
        new_labels: Optional[Sequence[str]],
        name: str,
        kind: str,
    ) -> Optional[List[str]]:
        if new_labels is not None:
            new_labels = [str(label) for label in new_labels]
            if len(new_labels) != n_new:
                raise DataError(f"{name} has {len(new_labels)} entries, expected {n_new}")
        if existing is None:
            return None
        if new_labels is None:
            offset = len(existing)
            new_labels = [f"{kind} {offset + index}" for index in range(n_new)]
        return existing + new_labels

    @staticmethod
    def _check_labels(
        labels: Optional[Sequence[str]], expected: int, name: str
    ) -> Optional[List[str]]:
        if labels is None:
            return None
        labels = [str(label) for label in labels]
        if len(labels) != expected:
            raise DataError(f"{name} has {len(labels)} entries, expected {expected}")
        return labels

    def _check_user(self, user: int) -> None:
        if not 0 <= user < self.n_users:
            raise DataError(f"user index {user} out of range [0, {self.n_users})")

    def _check_item(self, item: int) -> None:
        if not 0 <= item < self.n_items:
            raise DataError(f"item index {item} out of range [0, {self.n_items})")


def interaction_statistics(matrix: InteractionMatrix) -> Dict[str, float]:
    """Summary statistics of an interaction matrix.

    Returns a dictionary with the user/item counts, number of positives,
    density and the mean/median degrees — the quantities the paper quotes
    when describing its datasets.
    """
    user_degrees = matrix.user_degrees()
    item_degrees = matrix.item_degrees()
    return {
        "n_users": float(matrix.n_users),
        "n_items": float(matrix.n_items),
        "n_positives": float(matrix.nnz),
        "density": matrix.density,
        "mean_user_degree": float(user_degrees.mean()),
        "median_user_degree": float(np.median(user_degrees)),
        "mean_item_degree": float(item_degrees.mean()),
        "median_item_degree": float(np.median(item_degrees)),
    }
