"""Synthetic stand-ins for the paper's evaluation corpora.

The paper evaluates on four datasets: MovieLens-1M, CiteULike, the
proprietary B2B-DB and Netflix (Section VII-A).  This environment has no
network access and the B2B data is proprietary, so this module provides
generators that produce interaction matrices with the same *structural*
characteristics at laptop scale:

* a heavy-tailed item popularity distribution (Zipf-like),
* a heavy-tailed user activity distribution (log-normal),
* latent overlapping interest groups that link users and items — the
  structure both OCuLaR and the matrix-factorisation baselines exploit.

Every generator is deterministic given ``random_state`` and returns an
:class:`~repro.data.interactions.InteractionMatrix` (plus labels and deal
values for the B2B corpus, which feed the Figure 10 deployment rationale).
Real MovieLens/Netflix ratings files can still be used via
:mod:`repro.data.loaders`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.exceptions import DataError
from repro.utils.rng import RandomStateLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class DatasetSpec:
    """Structural description of a generated corpus.

    Attributes
    ----------
    name:
        Human-readable corpus name (e.g. ``"movielens-like"``).
    n_users, n_items:
        Matrix dimensions.
    n_groups:
        Number of latent overlapping interest groups planted in the corpus.
    target_density:
        Approximate fraction of positive entries the generator aims for.
    paper_reference:
        The real dataset this corpus stands in for, with its original size,
        so reports can state the substitution explicitly.
    """

    name: str
    n_users: int
    n_items: int
    n_groups: int
    target_density: float
    paper_reference: str


#: Paper-scale references, used in generated reports.
PAPER_DATASETS: Dict[str, str] = {
    "movielens": "MovieLens 1M: 6,040 users x 3,706 movies, ~1M ratings",
    "citeulike": "CiteULike: 5,551 users x 16,980 articles",
    "netflix": "Netflix: 480,189 users x 17,770 movies, ~100M ratings",
    "b2b": "B2B-DB: 80,000 clients x 3,000 products (proprietary)",
}


def _latent_group_matrix(
    n_users: int,
    n_items: int,
    n_groups: int,
    user_affinity: float,
    item_affinity: float,
    within_rate: float,
    background_rate: float,
    popularity_exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample a binary matrix from an overlapping latent-group model.

    Users and items are independently assigned to each group with
    probabilities ``user_affinity`` / ``item_affinity`` (so memberships
    overlap).  A pair sharing at least one group is positive with probability
    ``1 - (1 - within_rate)^(#shared groups)``; all pairs additionally receive
    background positives modulated by a Zipf-like item popularity weight.
    """
    user_groups = rng.random((n_users, n_groups)) < user_affinity
    item_groups = rng.random((n_items, n_groups)) < item_affinity
    # Ensure nobody is left without any group (otherwise they are pure noise).
    for membership, size in ((user_groups, n_groups), (item_groups, n_groups)):
        lonely = ~membership.any(axis=1)
        if lonely.any():
            membership[lonely, rng.integers(0, size, size=int(lonely.sum()))] = True

    shared = user_groups.astype(np.int64) @ item_groups.T.astype(np.int64)
    prob_group = 1.0 - np.power(1.0 - within_rate, shared)

    popularity = 1.0 / np.power(np.arange(1, n_items + 1), popularity_exponent)
    popularity = popularity / popularity.max()
    rng.shuffle(popularity)
    prob_background = background_rate * popularity[np.newaxis, :]

    activity = rng.lognormal(mean=0.0, sigma=0.6, size=n_users)
    activity = activity / activity.mean()
    prob = 1.0 - (1.0 - prob_group) * (1.0 - prob_background)
    prob = np.clip(prob * activity[:, np.newaxis], 0.0, 1.0)
    return (rng.random((n_users, n_items)) < prob).astype(float)


def _ensure_min_degree(dense: np.ndarray, min_degree: int, rng: np.random.Generator) -> None:
    """Add random positives so every user and item has at least ``min_degree``.

    Evaluation with recall@M requires held-out positives per user, and the
    neighbourhood baselines require non-empty item columns; a couple of
    random interactions for pathological rows keeps every method runnable
    without materially changing the corpus statistics.
    """
    n_users, n_items = dense.shape
    for user in range(n_users):
        missing = min_degree - int(dense[user].sum())
        if missing > 0:
            zero_items = np.flatnonzero(dense[user] == 0)
            chosen = rng.choice(zero_items, size=min(missing, len(zero_items)), replace=False)
            dense[user, chosen] = 1.0
    for item in range(n_items):
        missing = min_degree - int(dense[:, item].sum())
        if missing > 0:
            zero_users = np.flatnonzero(dense[:, item] == 0)
            chosen = rng.choice(zero_users, size=min(missing, len(zero_users)), replace=False)
            dense[chosen, item] = 1.0


def make_movielens_like(
    n_users: int = 600,
    n_items: int = 400,
    n_groups: int = 18,
    random_state: RandomStateLike = 0,
) -> Tuple[InteractionMatrix, DatasetSpec]:
    """MovieLens-1M stand-in: dense-ish matrix of movie watchers.

    MovieLens after the paper's ">= 3 stars" binarisation has density around
    3-4%; the generator targets the same regime with genre-like overlapping
    groups (a user who likes sci-fi and comedy belongs to two groups).
    """
    check_positive_int(n_users, "n_users")
    check_positive_int(n_items, "n_items")
    rng = ensure_rng(random_state)
    dense = _latent_group_matrix(
        n_users=n_users,
        n_items=n_items,
        n_groups=n_groups,
        user_affinity=0.12,
        item_affinity=0.10,
        within_rate=0.25,
        background_rate=0.02,
        popularity_exponent=0.9,
        rng=rng,
    )
    _ensure_min_degree(dense, min_degree=4, rng=rng)
    spec = DatasetSpec(
        name="movielens-like",
        n_users=n_users,
        n_items=n_items,
        n_groups=n_groups,
        target_density=float(dense.mean()),
        paper_reference=PAPER_DATASETS["movielens"],
    )
    titles = [f"Movie {index:04d}" for index in range(n_items)]
    users = [f"Viewer {index:04d}" for index in range(n_users)]
    return InteractionMatrix.from_dense(dense, user_labels=users, item_labels=titles), spec


def make_citeulike_like(
    n_users: int = 400,
    n_items: int = 900,
    n_groups: int = 25,
    random_state: RandomStateLike = 0,
) -> Tuple[InteractionMatrix, DatasetSpec]:
    """CiteULike stand-in: many more items than users, very sparse.

    CiteULike has roughly three times as many articles as users and a much
    lower density than MovieLens; research-topic groups are narrower, so
    group affinities are smaller and within-group rates higher.
    """
    check_positive_int(n_users, "n_users")
    check_positive_int(n_items, "n_items")
    rng = ensure_rng(random_state)
    dense = _latent_group_matrix(
        n_users=n_users,
        n_items=n_items,
        n_groups=n_groups,
        user_affinity=0.08,
        item_affinity=0.05,
        within_rate=0.30,
        background_rate=0.004,
        popularity_exponent=1.1,
        rng=rng,
    )
    _ensure_min_degree(dense, min_degree=3, rng=rng)
    spec = DatasetSpec(
        name="citeulike-like",
        n_users=n_users,
        n_items=n_items,
        n_groups=n_groups,
        target_density=float(dense.mean()),
        paper_reference=PAPER_DATASETS["citeulike"],
    )
    articles = [f"Article {index:05d}" for index in range(n_items)]
    users = [f"Researcher {index:04d}" for index in range(n_users)]
    return InteractionMatrix.from_dense(dense, user_labels=users, item_labels=articles), spec


def make_netflix_like(
    n_users: int = 2000,
    n_items: int = 600,
    n_groups: int = 30,
    random_state: RandomStateLike = 0,
) -> Tuple[InteractionMatrix, DatasetSpec]:
    """Netflix stand-in used by the scalability experiments (Figures 7 and 8).

    The absolute size is scaled down for laptop execution, but the matrix is
    the largest produced by this module so that per-iteration timing sweeps
    have enough work to show the linear trend.
    """
    check_positive_int(n_users, "n_users")
    check_positive_int(n_items, "n_items")
    rng = ensure_rng(random_state)
    dense = _latent_group_matrix(
        n_users=n_users,
        n_items=n_items,
        n_groups=n_groups,
        user_affinity=0.10,
        item_affinity=0.10,
        within_rate=0.20,
        background_rate=0.015,
        popularity_exponent=1.0,
        rng=rng,
    )
    _ensure_min_degree(dense, min_degree=3, rng=rng)
    spec = DatasetSpec(
        name="netflix-like",
        n_users=n_users,
        n_items=n_items,
        n_groups=n_groups,
        target_density=float(dense.mean()),
        paper_reference=PAPER_DATASETS["netflix"],
    )
    return InteractionMatrix.from_dense(dense), spec


# --------------------------------------------------------------------------- #
# B2B corpus with names, industries and deal values (Figure 10)
# --------------------------------------------------------------------------- #

_INDUSTRIES: Sequence[str] = (
    "Airline",
    "Telco",
    "Bank",
    "Retailer",
    "Insurer",
    "Utility",
    "Logistics",
    "Manufacturer",
    "Hospital",
    "University",
)

_PRODUCT_FAMILIES: Sequence[str] = (
    "Custom Cloud",
    "Managed Storage",
    "Analytics Suite",
    "Security Monitoring",
    "Mainframe Support",
    "Middleware License",
    "Data Warehouse",
    "Consulting Hours",
    "Backup Service",
    "Network Fabric",
    "AI Platform",
    "ERP Integration",
)


@dataclass
class B2BDataset:
    """Synthetic business-to-business purchase corpus.

    Mirrors the paper's B2B-DB: clients are companies with an industry, the
    products are enterprise offerings with historical deal values.  Extra
    metadata beyond the interaction matrix exists only to drive the
    deployment-style rationale of Figure 10 (industry evidence and price
    estimates).
    """

    matrix: InteractionMatrix
    client_names: List[str]
    client_industries: List[str]
    product_names: List[str]
    deal_values: Dict[Tuple[int, int], float] = field(default_factory=dict)
    spec: Optional[DatasetSpec] = None

    def historical_prices(self, item: int) -> List[float]:
        """All recorded deal values for ``item`` (possibly empty)."""
        return [value for (_, product), value in self.deal_values.items() if product == item]


def make_b2b(
    n_clients: int = 400,
    n_products: int = 60,
    n_segments: int = 8,
    within_rate: float = 0.45,
    background_rate: float = 0.01,
    random_state: RandomStateLike = 0,
) -> B2BDataset:
    """Generate a B2B purchase corpus with named clients and deal values.

    Clients are grouped into industry segments; each segment buys an
    overlapping bundle of products (e.g. airlines and telcos both buy
    "Custom Cloud" but only airlines buy "Logistics Hub").  Deal values are
    log-normally distributed around a per-product base price, providing the
    price-estimate evidence shown in the paper's deployment screenshot.
    """
    check_positive_int(n_clients, "n_clients")
    check_positive_int(n_products, "n_products")
    check_positive_int(n_segments, "n_segments")
    check_probability(within_rate, "within_rate")
    check_probability(background_rate, "background_rate")
    rng = ensure_rng(random_state)

    industries = [str(_INDUSTRIES[index % len(_INDUSTRIES)]) for index in range(n_segments)]
    client_segment = rng.integers(0, n_segments, size=n_clients)
    # Some clients belong to a secondary segment => overlapping co-clusters.
    secondary = rng.integers(0, n_segments, size=n_clients)
    has_secondary = rng.random(n_clients) < 0.35

    product_names = [
        f"{_PRODUCT_FAMILIES[index % len(_PRODUCT_FAMILIES)]} v{index // len(_PRODUCT_FAMILIES) + 1}"
        for index in range(n_products)
    ]
    base_price = rng.lognormal(mean=10.5, sigma=0.8, size=n_products)  # ~tens of k$

    # Each segment is interested in a random subset of products.
    products_per_segment = max(3, n_products // 3)
    segment_products = [
        np.sort(rng.choice(n_products, size=products_per_segment, replace=False))
        for _ in range(n_segments)
    ]

    dense = (rng.random((n_clients, n_products)) < background_rate).astype(float)
    for client in range(n_clients):
        segments = [int(client_segment[client])]
        if has_secondary[client] and int(secondary[client]) not in segments:
            segments.append(int(secondary[client]))
        for segment in segments:
            for product in segment_products[segment]:
                if rng.random() < within_rate:
                    dense[client, product] = 1.0
    _ensure_min_degree(dense, min_degree=2, rng=rng)

    client_names = [
        f"{industries[int(client_segment[index])]} Corp {index:03d}" for index in range(n_clients)
    ]
    client_industries = [industries[int(client_segment[index])] for index in range(n_clients)]

    deal_values: Dict[Tuple[int, int], float] = {}
    for client, product in zip(*np.nonzero(dense)):
        deal_values[(int(client), int(product))] = float(
            base_price[product] * rng.lognormal(mean=0.0, sigma=0.25)
        )

    matrix = InteractionMatrix.from_dense(
        dense, user_labels=client_names, item_labels=product_names
    )
    spec = DatasetSpec(
        name="b2b-like",
        n_users=n_clients,
        n_items=n_products,
        n_groups=n_segments,
        target_density=float(dense.mean()),
        paper_reference=PAPER_DATASETS["b2b"],
    )
    return B2BDataset(
        matrix=matrix,
        client_names=client_names,
        client_industries=client_industries,
        product_names=product_names,
        deal_values=deal_values,
        spec=spec,
    )


def dataset_by_name(name: str, random_state: RandomStateLike = 0, scale: float = 1.0):
    """Construct one of the named corpora, optionally scaled in size.

    ``name`` must be one of ``"movielens"``, ``"citeulike"``, ``"netflix"``
    or ``"b2b"``.  ``scale`` multiplies the default user/item counts, which
    lets the benchmark harness shrink corpora for smoke runs.
    """
    if scale <= 0:
        raise DataError(f"scale must be positive, got {scale}")

    def scaled(value: int) -> int:
        return max(10, int(round(value * scale)))

    if name == "movielens":
        matrix, spec = make_movielens_like(
            n_users=scaled(600), n_items=scaled(400), random_state=random_state
        )
        return matrix, spec
    if name == "citeulike":
        matrix, spec = make_citeulike_like(
            n_users=scaled(400), n_items=scaled(900), random_state=random_state
        )
        return matrix, spec
    if name == "netflix":
        matrix, spec = make_netflix_like(
            n_users=scaled(2000), n_items=scaled(600), random_state=random_state
        )
        return matrix, spec
    if name == "b2b":
        dataset = make_b2b(
            n_clients=scaled(400), n_products=scaled(60), random_state=random_state
        )
        return dataset.matrix, dataset.spec
    raise DataError(f"unknown dataset name {name!r}; expected movielens/citeulike/netflix/b2b")
