"""Loaders for on-disk rating files.

The paper binarises MovieLens and Netflix star ratings with the rule
"ratings >= 3 are positive examples, everything else is ignored"
(Section VII-A).  :func:`binarize_ratings` implements that rule;
:func:`load_movielens_ratings` parses the standard ``ratings.dat`` /
``u.data`` formats so that a user with the real files can run the exact
paper pipeline; :func:`load_interactions_csv` handles generic
``user,item[,rating]`` CSV exports such as a B2B purchase log.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.data.interactions import InteractionMatrix
from repro.exceptions import DataError

PathLike = Union[str, Path]

RatingTriple = Tuple[str, str, float]


def binarize_ratings(
    ratings: Iterable[RatingTriple],
    threshold: float = 3.0,
) -> List[Tuple[str, str]]:
    """Keep (user, item) pairs whose rating is at least ``threshold``.

    This is the paper's convention: "only consider ratings greater than or
    equal to 3 as positive examples and ignore all other ratings".
    """
    positives: List[Tuple[str, str]] = []
    for user, item, rating in ratings:
        if rating >= threshold:
            positives.append((str(user), str(item)))
    return positives


def _index_pairs(
    pairs: Sequence[Tuple[str, str]],
) -> Tuple[List[Tuple[int, int]], List[str], List[str]]:
    """Map raw string ids to dense indices, preserving first-seen order."""
    user_index: Dict[str, int] = {}
    item_index: Dict[str, int] = {}
    indexed: List[Tuple[int, int]] = []
    for user, item in pairs:
        if user not in user_index:
            user_index[user] = len(user_index)
        if item not in item_index:
            item_index[item] = len(item_index)
        indexed.append((user_index[user], item_index[item]))
    users = [user for user, _ in sorted(user_index.items(), key=lambda kv: kv[1])]
    items = [item for item, _ in sorted(item_index.items(), key=lambda kv: kv[1])]
    return indexed, users, items


def interactions_from_ratings(
    ratings: Iterable[RatingTriple],
    threshold: float = 3.0,
) -> InteractionMatrix:
    """Build an :class:`InteractionMatrix` from explicit ratings.

    Ratings below ``threshold`` are dropped (treated as unknown), matching
    the paper's one-class conversion.  Raw user/item identifiers become the
    matrix labels.
    """
    positives = binarize_ratings(ratings, threshold=threshold)
    if not positives:
        raise DataError("no positive examples remain after thresholding")
    indexed, users, items = _index_pairs(positives)
    return InteractionMatrix.from_pairs(
        indexed, n_users=len(users), n_items=len(items), user_labels=users, item_labels=items
    )


def load_movielens_ratings(
    path: PathLike,
    threshold: float = 3.0,
    separator: Optional[str] = None,
) -> InteractionMatrix:
    """Load a MovieLens-style ratings file and binarise it.

    Supports the two common layouts:

    * ``ratings.dat`` (MovieLens 1M): ``user::item::rating::timestamp``
    * ``u.data`` (MovieLens 100K): tab-separated ``user item rating timestamp``

    Parameters
    ----------
    path:
        Path to the ratings file.
    threshold:
        Minimum rating treated as a positive example (paper uses 3).
    separator:
        Override the field separator; auto-detected (``::`` then tab then
        comma) when omitted.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"ratings file not found: {file_path}")
    triples: List[RatingTriple] = []
    with open(file_path, "r", encoding="utf-8", errors="replace") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            fields = _split_rating_line(line, separator)
            if len(fields) < 3:
                raise DataError(
                    f"line {line_number} of {file_path} has {len(fields)} fields, expected >= 3"
                )
            try:
                rating = float(fields[2])
            except ValueError as exc:
                raise DataError(
                    f"line {line_number} of {file_path}: rating {fields[2]!r} is not numeric"
                ) from exc
            triples.append((fields[0], fields[1], rating))
    return interactions_from_ratings(triples, threshold=threshold)


def _split_rating_line(line: str, separator: Optional[str]) -> List[str]:
    """Split a ratings line with an explicit or auto-detected separator."""
    if separator is not None:
        return [field.strip() for field in line.split(separator)]
    if "::" in line:
        return [field.strip() for field in line.split("::")]
    if "\t" in line:
        return [field.strip() for field in line.split("\t")]
    return [field.strip() for field in line.split(",")]


def load_interactions_csv(
    path: PathLike,
    user_column: str = "user",
    item_column: str = "item",
    rating_column: Optional[str] = None,
    threshold: float = 1.0,
) -> InteractionMatrix:
    """Load interactions from a CSV file with a header row.

    When ``rating_column`` is ``None`` every row is a positive example (the
    typical purchase-log export of a B2B system); otherwise ratings are
    binarised with ``threshold``.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"interaction file not found: {file_path}")
    triples: List[RatingTriple] = []
    with open(file_path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DataError(f"{file_path} has no header row")
        missing = [
            column
            for column in (user_column, item_column)
            if column not in reader.fieldnames
        ]
        if rating_column is not None and rating_column not in reader.fieldnames:
            missing.append(rating_column)
        if missing:
            raise DataError(f"{file_path} is missing required columns: {missing}")
        for row_number, row in enumerate(reader, start=2):
            user = row[user_column]
            item = row[item_column]
            if rating_column is None:
                rating = threshold
            else:
                try:
                    rating = float(row[rating_column])
                except (TypeError, ValueError) as exc:
                    raise DataError(
                        f"row {row_number} of {file_path}: rating "
                        f"{row[rating_column]!r} is not numeric"
                    ) from exc
            triples.append((user, item, rating))
    return interactions_from_ratings(triples, threshold=threshold)
