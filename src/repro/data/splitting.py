"""Train/test splitting for one-class evaluation.

The paper's protocol (Section VII-B.2): split the positive examples into a
training and a test set with a 75/25 ratio and average metrics over ten
random instances.  :func:`train_test_split` implements the per-user variant
of that split (each user's positives are split independently so every user
keeps some training history), :func:`leave_k_out_split` holds out a fixed
number of positives per user, and :func:`kfold_splits` produces the folds
used for hyper-parameter cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.exceptions import DataError
from repro.utils.rng import RandomStateLike, ensure_rng


@dataclass
class Split:
    """A train/test partition of the positive examples.

    Attributes
    ----------
    train:
        Interaction matrix containing the training positives only.
    test_items:
        Mapping from user index to the array of that user's held-out items.
        Users with no held-out items are absent.
    """

    train: InteractionMatrix
    test_items: Dict[int, np.ndarray]

    @property
    def n_test_pairs(self) -> int:
        """Total number of held-out positive pairs."""
        return int(sum(len(items) for items in self.test_items.values()))

    def test_pairs(self) -> List[Tuple[int, int]]:
        """Held-out positives as a flat list of (user, item) pairs."""
        pairs: List[Tuple[int, int]] = []
        for user, items in sorted(self.test_items.items()):
            pairs.extend((user, int(item)) for item in items)
        return pairs


def train_test_split(
    matrix: InteractionMatrix,
    test_fraction: float = 0.25,
    min_train_positives: int = 1,
    random_state: RandomStateLike = None,
) -> Split:
    """Per-user random split of positives into train and test sets.

    Parameters
    ----------
    matrix:
        The full interaction matrix.
    test_fraction:
        Fraction of each user's positives moved to the test set (paper: 0.25).
    min_train_positives:
        A user must retain at least this many training positives; users with
        too few interactions contribute nothing to the test set.
    random_state:
        Seed or generator.

    Returns
    -------
    Split
        The training matrix (same shape as the input) and the per-user
        held-out items.
    """
    if not 0 < test_fraction < 1:
        raise DataError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    if min_train_positives < 0:
        raise DataError("min_train_positives must be non-negative")
    rng = ensure_rng(random_state)

    removed: List[Tuple[int, int]] = []
    test_items: Dict[int, np.ndarray] = {}
    for user in range(matrix.n_users):
        items = matrix.items_of_user(user)
        if len(items) == 0:
            continue
        n_test = int(np.floor(test_fraction * len(items)))
        n_test = min(n_test, len(items) - min_train_positives)
        if n_test <= 0:
            continue
        chosen = rng.choice(items, size=n_test, replace=False)
        chosen = np.sort(chosen)
        test_items[user] = chosen
        removed.extend((user, int(item)) for item in chosen)

    if not removed:
        raise DataError(
            "the split produced no test examples; the matrix is too sparse for "
            f"test_fraction={test_fraction}"
        )
    train = matrix.without_pairs(removed)
    return Split(train=train, test_items=test_items)


def leave_k_out_split(
    matrix: InteractionMatrix,
    k: int = 1,
    min_train_positives: int = 1,
    random_state: RandomStateLike = None,
) -> Split:
    """Hold out exactly ``k`` positives per eligible user.

    Users with fewer than ``k + min_train_positives`` positives are skipped.
    """
    if k <= 0:
        raise DataError(f"k must be positive, got {k}")
    rng = ensure_rng(random_state)
    removed: List[Tuple[int, int]] = []
    test_items: Dict[int, np.ndarray] = {}
    for user in range(matrix.n_users):
        items = matrix.items_of_user(user)
        if len(items) < k + min_train_positives:
            continue
        chosen = np.sort(rng.choice(items, size=k, replace=False))
        test_items[user] = chosen
        removed.extend((user, int(item)) for item in chosen)
    if not removed:
        raise DataError("leave-k-out produced no test examples")
    train = matrix.without_pairs(removed)
    return Split(train=train, test_items=test_items)


def kfold_splits(
    matrix: InteractionMatrix,
    n_folds: int = 4,
    random_state: RandomStateLike = None,
) -> Iterator[Split]:
    """Yield ``n_folds`` cross-validation splits over the positive pairs.

    The positive pairs are partitioned globally into ``n_folds`` groups; each
    fold's split uses one group as the test set.  Users whose entire history
    falls into the test group keep one training positive (moved back) so the
    training matrix never has empty rows that were non-empty originally.
    """
    if n_folds < 2:
        raise DataError(f"n_folds must be at least 2, got {n_folds}")
    rng = ensure_rng(random_state)
    pairs = matrix.pairs()
    if len(pairs) < n_folds:
        raise DataError("not enough positive examples for the requested number of folds")
    order = rng.permutation(len(pairs))
    fold_of_pair = np.empty(len(pairs), dtype=np.int64)
    for position, pair_index in enumerate(order):
        fold_of_pair[pair_index] = position % n_folds

    for fold in range(n_folds):
        test_mask = fold_of_pair == fold
        held: Dict[int, List[int]] = {}
        for user, item in pairs[test_mask]:
            held.setdefault(int(user), []).append(int(item))

        # Guarantee at least one training positive per affected user.
        removed: List[Tuple[int, int]] = []
        test_items: Dict[int, np.ndarray] = {}
        for user, items in held.items():
            full_history = matrix.items_of_user(user)
            items_kept = items
            if len(items) >= len(full_history):
                items_kept = items[:-1]
            if not items_kept:
                continue
            test_items[user] = np.asarray(sorted(items_kept), dtype=np.int64)
            removed.extend((user, item) for item in items_kept)
        if not removed:
            continue
        train = matrix.without_pairs(removed)
        yield Split(train=train, test_items=test_items)
