"""Synthetic data with planted overlapping co-clusters.

Two generators live here:

* :func:`make_paper_toy_example` reconstructs the 12x12 toy matrix of the
  paper's Figures 1 and 3 (three overlapping co-clusters, three candidate
  recommendations left as holes).
* :func:`make_planted_coclusters` draws matrices from the paper's own
  generative model: each of ``K`` planted co-clusters contains a block of
  users and items; a (user, item) pair inside a block is positive with the
  block's density, and pairs outside every block are positive with a small
  background noise rate.  Because the ground-truth memberships are returned,
  these matrices are used throughout the test-suite to verify that OCuLaR
  actually recovers overlapping structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.exceptions import DataError
from repro.utils.rng import RandomStateLike, ensure_rng


@dataclass
class PlantedCoClusters:
    """A synthetic interaction matrix plus its ground-truth co-clusters.

    Attributes
    ----------
    matrix:
        The observed one-class interaction matrix.
    user_memberships, item_memberships:
        Lists of length ``n_coclusters``; entry ``c`` holds the user (item)
        indices planted in co-cluster ``c``.  Co-clusters may overlap.
    heldout_pairs:
        Pairs that belong to a planted co-cluster but were removed from the
        observed matrix; a good recommender should rank them highly.
    """

    matrix: InteractionMatrix
    user_memberships: List[np.ndarray] = field(default_factory=list)
    item_memberships: List[np.ndarray] = field(default_factory=list)
    heldout_pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def n_coclusters(self) -> int:
        """Number of planted co-clusters."""
        return len(self.user_memberships)

    def membership_matrix_users(self) -> np.ndarray:
        """Binary ``(n_users, K)`` ground-truth user membership indicator."""
        indicator = np.zeros((self.matrix.n_users, self.n_coclusters))
        for cluster, users in enumerate(self.user_memberships):
            indicator[users, cluster] = 1.0
        return indicator

    def membership_matrix_items(self) -> np.ndarray:
        """Binary ``(n_items, K)`` ground-truth item membership indicator."""
        indicator = np.zeros((self.matrix.n_items, self.n_coclusters))
        for cluster, items in enumerate(self.item_memberships):
            indicator[items, cluster] = 1.0
        return indicator


# The 12x12 toy example of Figure 1 / Figure 3.  Three co-clusters (read off
# the probability matrix printed in Figure 3):
#   co-cluster 1: users 0-2,  items 3-6
#   co-cluster 2: users 4-6,  items 1-4
#   co-cluster 3: users 6-9,  items 4-9
# Users 3, 10, 11 and items 0, 10, 11 belong to no co-cluster.  Three holes
# (the white squares of Figure 1, i.e. candidate recommendations) are left
# inside the blocks: (0, 6) and (1, 6) in co-cluster 1 and the paper's
# headline cell (6, 4), which sits in the overlap of co-clusters 2 and 3.
# With this reconstruction OCuLaR's fitted confidence for (user 6, item 4)
# lands at ~0.82, matching the 0.83 reported in the paper, and item 4 is
# affiliated with all three co-clusters exactly as in the paper's example.
_TOY_COCLUSTERS: Sequence[Tuple[Sequence[int], Sequence[int]]] = (
    ((0, 1, 2), (3, 4, 5, 6)),
    ((4, 5, 6), (1, 2, 3, 4)),
    ((6, 7, 8, 9), (4, 5, 6, 7, 8, 9)),
)
_TOY_HOLES: Sequence[Tuple[int, int]] = ((0, 6), (1, 6), (6, 4))
_TOY_SHAPE: Tuple[int, int] = (12, 12)


def make_paper_toy_example() -> PlantedCoClusters:
    """Reconstruct the overlapping-co-cluster toy example of Figures 1 and 3.

    Returns
    -------
    PlantedCoClusters
        A 12x12 matrix with three overlapping co-clusters and three held-out
        pairs (the white squares of Figure 1), including the paper's headline
        recommendation of item 4 to user 6.
    """
    dense = np.zeros(_TOY_SHAPE)
    user_memberships: List[np.ndarray] = []
    item_memberships: List[np.ndarray] = []
    for users, items in _TOY_COCLUSTERS:
        users_arr = np.asarray(users, dtype=np.int64)
        items_arr = np.asarray(items, dtype=np.int64)
        dense[np.ix_(users_arr, items_arr)] = 1.0
        user_memberships.append(users_arr)
        item_memberships.append(items_arr)
    for user, item in _TOY_HOLES:
        dense[user, item] = 0.0
    matrix = InteractionMatrix.from_dense(dense)
    return PlantedCoClusters(
        matrix=matrix,
        user_memberships=user_memberships,
        item_memberships=item_memberships,
        heldout_pairs=list(_TOY_HOLES),
    )


def make_planted_coclusters(
    n_users: int = 200,
    n_items: int = 100,
    n_coclusters: int = 4,
    users_per_cocluster: int = 60,
    items_per_cocluster: int = 30,
    within_density: float = 0.8,
    background_density: float = 0.005,
    holdout_fraction: float = 0.0,
    overlap: bool = True,
    random_state: RandomStateLike = None,
) -> PlantedCoClusters:
    """Draw an interaction matrix with planted (optionally overlapping) co-clusters.

    Parameters
    ----------
    n_users, n_items:
        Matrix dimensions.
    n_coclusters:
        Number of planted co-clusters ``K``.
    users_per_cocluster, items_per_cocluster:
        Size of each planted block.  Must not exceed the matrix dimensions.
    within_density:
        Probability that a (user, item) pair inside a planted block is a
        positive example — the paper's model with
        ``1 - exp(-f_u f_i)`` constant inside the block.
    background_density:
        Probability of a positive example outside every block (noise).
    holdout_fraction:
        Fraction of within-block positives that are removed from the observed
        matrix and reported in ``heldout_pairs``; these act as the "white
        squares" a recommender should recover.
    overlap:
        When ``True`` (default) blocks are sampled independently and may
        overlap; when ``False`` users and items are partitioned into disjoint
        blocks (the non-overlapping regime the paper contrasts against).
    random_state:
        Seed or generator for reproducibility.

    Returns
    -------
    PlantedCoClusters
        The observed matrix, the ground-truth memberships and the held-out
        pairs.
    """
    if users_per_cocluster > n_users or items_per_cocluster > n_items:
        raise DataError("co-cluster size cannot exceed the matrix dimensions")
    if not 0 <= holdout_fraction < 1:
        raise DataError(f"holdout_fraction must lie in [0, 1), got {holdout_fraction}")
    if not 0 <= background_density <= 1 or not 0 < within_density <= 1:
        raise DataError("densities must be probabilities")
    if not overlap and (
        n_coclusters * users_per_cocluster > n_users
        or n_coclusters * items_per_cocluster > n_items
    ):
        raise DataError("disjoint co-clusters of the requested size do not fit in the matrix")

    rng = ensure_rng(random_state)
    dense = (rng.random((n_users, n_items)) < background_density).astype(float)

    user_memberships: List[np.ndarray] = []
    item_memberships: List[np.ndarray] = []
    within_pairs: List[Tuple[int, int]] = []
    for cluster in range(n_coclusters):
        if overlap:
            users = np.sort(rng.choice(n_users, size=users_per_cocluster, replace=False))
            items = np.sort(rng.choice(n_items, size=items_per_cocluster, replace=False))
        else:
            users = np.arange(
                cluster * users_per_cocluster, (cluster + 1) * users_per_cocluster
            )
            items = np.arange(
                cluster * items_per_cocluster, (cluster + 1) * items_per_cocluster
            )
        user_memberships.append(users)
        item_memberships.append(items)
        block = rng.random((len(users), len(items))) < within_density
        block_users, block_items = np.nonzero(block)
        for bu, bi in zip(block_users, block_items):
            user, item = int(users[bu]), int(items[bi])
            dense[user, item] = 1.0
            within_pairs.append((user, item))

    heldout_pairs: List[Tuple[int, int]] = []
    if holdout_fraction > 0 and within_pairs:
        unique_pairs = sorted(set(within_pairs))
        n_holdout = int(round(holdout_fraction * len(unique_pairs)))
        if n_holdout > 0:
            chosen = rng.choice(len(unique_pairs), size=n_holdout, replace=False)
            for index in chosen:
                user, item = unique_pairs[index]
                dense[user, item] = 0.0
                heldout_pairs.append((user, item))

    # Guarantee that the matrix has no empty rows/columns only when the noise
    # floor is zero; empty rows are legal but make some baselines degenerate.
    matrix = InteractionMatrix.from_dense(dense)
    return PlantedCoClusters(
        matrix=matrix,
        user_memberships=user_memberships,
        item_memberships=item_memberships,
        heldout_pairs=heldout_pairs,
    )


def membership_recovery_score(
    truth: Sequence[np.ndarray], estimate: Sequence[np.ndarray], universe: int
) -> float:
    """Best-matching mean Jaccard similarity between two co-cluster covers.

    For every ground-truth set the best Jaccard similarity against any
    estimated set is found (greedy, allowing re-use); the mean over
    ground-truth sets is returned.  Used by the tests to check that OCuLaR
    recovers planted structure and that the Figure 2 baselines do not.

    Parameters
    ----------
    truth, estimate:
        Sequences of index arrays (subsets of ``range(universe)``).
    universe:
        Size of the index universe; only used for validation.
    """
    if not truth:
        raise DataError("truth must contain at least one set")
    truth_sets = [set(int(x) for x in arr) for arr in truth]
    estimate_sets = [set(int(x) for x in arr) for arr in estimate]
    for collection in (truth_sets, estimate_sets):
        for members in collection:
            if members and (min(members) < 0 or max(members) >= universe):
                raise DataError("membership index outside the declared universe")
    scores = []
    for true_set in truth_sets:
        best = 0.0
        for est_set in estimate_sets:
            union = len(true_set | est_set)
            if union == 0:
                continue
            best = max(best, len(true_set & est_set) / union)
        scores.append(best)
    return float(np.mean(scores))
