"""Data substrate: interaction matrices, dataset generators, loaders, splits."""

from repro.data.interactions import InteractionMatrix
from repro.data.synthetic import PlantedCoClusters, make_planted_coclusters, make_paper_toy_example
from repro.data.datasets import (
    DatasetSpec,
    make_movielens_like,
    make_citeulike_like,
    make_netflix_like,
    make_b2b,
    B2BDataset,
)
from repro.data.loaders import load_movielens_ratings, load_interactions_csv, binarize_ratings
from repro.data.splitting import train_test_split, leave_k_out_split, kfold_splits

__all__ = [
    "InteractionMatrix",
    "PlantedCoClusters",
    "make_planted_coclusters",
    "make_paper_toy_example",
    "DatasetSpec",
    "make_movielens_like",
    "make_citeulike_like",
    "make_netflix_like",
    "make_b2b",
    "B2BDataset",
    "load_movielens_ratings",
    "load_interactions_csv",
    "binarize_ratings",
    "train_test_split",
    "leave_k_out_split",
    "kfold_splits",
]
