"""Bipartite graph view of a one-class interaction matrix.

The paper's Figure 2 feeds the toy purchase matrix to two generic community
detection algorithms.  To do the same, the interaction matrix is interpreted
as a bipartite graph: one node per user, one node per item, and an edge for
every positive example.  Node indices are laid out as

    ``0 .. n_users - 1``                    user nodes
    ``n_users .. n_users + n_items - 1``    item nodes

:class:`BipartiteGraph` exposes the adjacency structure, degree information
and conversions between graph communities and user/item co-cluster sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.interactions import InteractionMatrix
from repro.exceptions import DataError


@dataclass
class Community:
    """A community of graph nodes, split back into user and item members."""

    users: np.ndarray
    items: np.ndarray

    @property
    def size(self) -> int:
        """Total number of member nodes."""
        return len(self.users) + len(self.items)

    @property
    def is_cocluster(self) -> bool:
        """True when the community contains at least one user and one item.

        This is the paper's requirement for a valid co-cluster; a community
        of users only (or items only) cannot generate recommendations.
        """
        return len(self.users) > 0 and len(self.items) > 0


class BipartiteGraph:
    """Undirected bipartite user-item graph built from positive examples."""

    def __init__(self, matrix: InteractionMatrix) -> None:
        self.matrix = matrix
        self.n_users = matrix.n_users
        self.n_items = matrix.n_items
        self.n_nodes = self.n_users + self.n_items
        csr = matrix.csr()
        upper_right = csr
        lower_left = sp.csr_matrix(csr.T)
        self._adjacency = sp.bmat(
            [
                [sp.csr_matrix((self.n_users, self.n_users)), upper_right],
                [lower_left, sp.csr_matrix((self.n_items, self.n_items))],
            ],
            format="csr",
        )

    # ------------------------------------------------------------------ #
    # Graph structure
    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        """Number of undirected edges (= number of positive examples)."""
        return self.matrix.nnz

    def adjacency(self) -> sp.csr_matrix:
        """Symmetric adjacency matrix of shape ``(n_nodes, n_nodes)``."""
        return self._adjacency

    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        return np.asarray(self._adjacency.sum(axis=1)).ravel()

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbours of ``node`` in the bipartite graph."""
        if not 0 <= node < self.n_nodes:
            raise DataError(f"node {node} out of range [0, {self.n_nodes})")
        start, stop = self._adjacency.indptr[node], self._adjacency.indptr[node + 1]
        return self._adjacency.indices[start:stop].copy()

    def edges(self) -> List[Tuple[int, int]]:
        """All undirected edges as (user-node, item-node) pairs."""
        return [
            (int(user), int(item) + self.n_users) for user, item in self.matrix.iter_pairs()
        ]

    # ------------------------------------------------------------------ #
    # Node index conversions
    # ------------------------------------------------------------------ #
    def is_user_node(self, node: int) -> bool:
        """Whether the graph node indexes a user."""
        return 0 <= node < self.n_users

    def user_of_node(self, node: int) -> int:
        """Map a user node back to its user index."""
        if not self.is_user_node(node):
            raise DataError(f"node {node} is not a user node")
        return node

    def item_of_node(self, node: int) -> int:
        """Map an item node back to its item index."""
        if not self.n_users <= node < self.n_nodes:
            raise DataError(f"node {node} is not an item node")
        return node - self.n_users

    def split_nodes(self, nodes: Iterable[int]) -> Community:
        """Split a set of graph nodes into user indices and item indices."""
        users: List[int] = []
        items: List[int] = []
        for node in nodes:
            if self.is_user_node(int(node)):
                users.append(int(node))
            else:
                items.append(self.item_of_node(int(node)))
        return Community(
            users=np.asarray(sorted(users), dtype=np.int64),
            items=np.asarray(sorted(items), dtype=np.int64),
        )

    def communities_from_labels(self, labels: Sequence[int]) -> List[Community]:
        """Convert a per-node label vector into :class:`Community` objects."""
        if len(labels) != self.n_nodes:
            raise DataError(
                f"labels has {len(labels)} entries but the graph has {self.n_nodes} nodes"
            )
        grouped: Dict[int, List[int]] = {}
        for node, label in enumerate(labels):
            grouped.setdefault(int(label), []).append(node)
        return [self.split_nodes(nodes) for _, nodes in sorted(grouped.items())]

    def communities_from_sets(self, node_sets: Iterable[Set[int]]) -> List[Community]:
        """Convert (possibly overlapping) node sets into :class:`Community` objects."""
        return [self.split_nodes(nodes) for nodes in node_sets]
