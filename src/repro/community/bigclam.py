"""BIGCLAM: overlapping community detection by non-negative factorisation.

Yang & Leskovec's Cluster Affiliation Model for Big Networks (WSDM 2013) is
the *overlapping* community detector the paper compares against in Figure 2,
and the work OCuLaR borrows its likelihood and precomputation trick from.
For a graph with adjacency ``A`` and non-negative node affiliations ``F``,
the log-likelihood is

    ``sum_{(u,v) in E} log(1 - exp(-<F_u, F_v>)) - sum_{(u,v) not in E} <F_u, F_v>``

maximised by projected gradient ascent one node at a time, using
``sum_{v not in N(u)} F_v = sum_v F_v - F_u - sum_{v in N(u)} F_v``.

Differences to OCuLaR that the paper calls out: BIGCLAM operates on a
general (unipartite) graph — here the bipartite user-item graph — and has
*no regularisation*, which is one reason it recovers poorer structure for
recommendation purposes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.community.bipartite import BipartiteGraph, Community
from repro.core.objective import gradient_ratio, safe_log1mexp
from repro.data.interactions import InteractionMatrix
from repro.exceptions import DataError, NotFittedError
from repro.utils.rng import RandomStateLike, ensure_rng
from repro.utils.validation import check_positive_int

#: Default affiliation threshold for community membership, following the
#: BIGCLAM paper's epsilon = sqrt(-log(1 - 1/N)) heuristic replaced by the
#: same P = 0.5 rule used for OCuLaR co-clusters.
DEFAULT_MEMBERSHIP_THRESHOLD = float(np.sqrt(np.log(2.0)))


class BigClam:
    """Overlapping community detection on the bipartite purchase graph.

    Parameters
    ----------
    n_communities:
        Number of affiliation dimensions (communities) to fit.
    max_iterations:
        Number of full passes over all nodes.
    learning_rate:
        Initial step size of the per-node projected gradient ascent.
    backtracks:
        Number of step halvings allowed per node update.
    tolerance:
        Relative log-likelihood improvement below which fitting stops.
    random_state:
        Seed for the affiliation initialisation.
    """

    def __init__(
        self,
        n_communities: int = 4,
        max_iterations: int = 100,
        learning_rate: float = 0.05,
        backtracks: int = 10,
        tolerance: float = 1e-5,
        random_state: RandomStateLike = None,
    ) -> None:
        self.n_communities = check_positive_int(n_communities, "n_communities")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.learning_rate = learning_rate
        self.backtracks = check_positive_int(backtracks, "backtracks")
        self.tolerance = tolerance
        self.random_state = random_state
        self.affiliations_: Optional[np.ndarray] = None
        self.log_likelihoods_: List[float] = []
        self._graph: Optional[BipartiteGraph] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, matrix: InteractionMatrix) -> "BigClam":
        """Fit node affiliations to the bipartite graph of ``matrix``."""
        graph = BipartiteGraph(matrix)
        adjacency = graph.adjacency()
        n_nodes = graph.n_nodes
        if graph.n_edges == 0:
            raise DataError("cannot fit BIGCLAM on a graph with no edges")
        rng = ensure_rng(self.random_state)
        affiliations = rng.uniform(0.0, 1.0, size=(n_nodes, self.n_communities))

        self.log_likelihoods_ = [self._log_likelihood(adjacency, affiliations)]
        for _ in range(self.max_iterations):
            total = affiliations.sum(axis=0)
            for node in range(n_nodes):
                start, stop = adjacency.indptr[node], adjacency.indptr[node + 1]
                neighbors = adjacency.indices[start:stop]
                neighbor_affiliations = affiliations[neighbors]
                current = affiliations[node]

                affinities = neighbor_affiliations @ current
                ratios = gradient_ratio(affinities)
                gradient = ratios @ neighbor_affiliations - (
                    total - current - neighbor_affiliations.sum(axis=0)
                )

                step = self.learning_rate
                current_value = self._node_log_likelihood(
                    current, neighbor_affiliations, total
                )
                for _ in range(self.backtracks):
                    candidate = np.maximum(0.0, current + step * gradient)
                    candidate_value = self._node_log_likelihood(
                        candidate, neighbor_affiliations, total - current + candidate
                    )
                    if candidate_value >= current_value:
                        total = total - current + candidate
                        affiliations[node] = candidate
                        break
                    step *= 0.5

            likelihood = self._log_likelihood(adjacency, affiliations)
            previous = self.log_likelihoods_[-1]
            self.log_likelihoods_.append(likelihood)
            if abs(likelihood - previous) / max(abs(previous), 1.0) < self.tolerance:
                break

        self.affiliations_ = affiliations
        self._graph = graph
        return self

    @staticmethod
    def _node_log_likelihood(
        affiliation: np.ndarray, neighbor_affiliations: np.ndarray, total: np.ndarray
    ) -> float:
        """Log-likelihood terms involving a single node's affiliation vector."""
        affinities = neighbor_affiliations @ affiliation
        positive = float(np.sum(safe_log1mexp(affinities)))
        non_neighbors_sum = total - affiliation - neighbor_affiliations.sum(axis=0)
        negative = float(affiliation @ non_neighbors_sum)
        return positive - negative

    @staticmethod
    def _log_likelihood(adjacency: sp.csr_matrix, affiliations: np.ndarray) -> float:
        """Full BIGCLAM log-likelihood of the affiliation matrix."""
        coo = adjacency.tocoo()
        mask = coo.row < coo.col
        rows, cols = coo.row[mask], coo.col[mask]
        affinities = np.einsum("ij,ij->i", affiliations[rows], affiliations[cols])
        positive = float(np.sum(safe_log1mexp(affinities)))
        total = affiliations.sum(axis=0)
        all_pairs = 0.5 * (float(total @ total) - float(np.sum(affiliations * affiliations)))
        negative = all_pairs - float(np.sum(affinities))
        return positive - negative

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def communities(self, threshold: Optional[float] = None) -> List[Community]:
        """Detected (overlapping) communities as user/item member sets."""
        if self.affiliations_ is None or self._graph is None:
            raise NotFittedError("BigClam must be fitted before inspecting communities")
        cutoff = DEFAULT_MEMBERSHIP_THRESHOLD if threshold is None else float(threshold)
        node_sets = [
            set(np.flatnonzero(self.affiliations_[:, community] >= cutoff).tolist())
            for community in range(self.n_communities)
        ]
        return self._graph.communities_from_sets(node_sets)

    def user_communities(self, threshold: Optional[float] = None) -> List[np.ndarray]:
        """User membership arrays of the detected communities."""
        return [community.users for community in self.communities(threshold)]

    def item_communities(self, threshold: Optional[float] = None) -> List[np.ndarray]:
        """Item membership arrays of the detected communities."""
        return [community.items for community in self.communities(threshold)]
