"""Community detection on the user-item bipartite graph (Figure 2 comparators)."""

from repro.community.bipartite import BipartiteGraph
from repro.community.modularity import GreedyModularityCommunities
from repro.community.bigclam import BigClam

__all__ = ["BipartiteGraph", "GreedyModularityCommunities", "BigClam"]
