"""Non-overlapping community detection by greedy modularity maximisation.

The paper's Figure 2 uses "the modularity algorithm by Girvan & Newman ...
used in many software packages" as the representative *non-overlapping*
community detector and shows that it cannot recover overlapping co-clusters.
This module implements the standard agglomerative (Clauset-Newman-Moore
style) greedy modularity maximisation: start with every node in its own
community and repeatedly merge the pair of connected communities whose merge
increases modularity the most, stopping when no merge improves it.

Modularity of a partition ``{C}`` of a graph with ``m`` edges:

    ``Q = sum_C ( e_C / m - (d_C / (2m))^2 )``

where ``e_C`` is the number of intra-community edges and ``d_C`` the total
degree of the community.  The greedy algorithm is exact enough for the toy
matrices this comparator is used on, and by construction assigns every node
to exactly one community — which is precisely why it misses the overlaps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.community.bipartite import BipartiteGraph, Community
from repro.data.interactions import InteractionMatrix
from repro.exceptions import DataError


def modularity(graph: BipartiteGraph, labels: np.ndarray) -> float:
    """Newman modularity of a node partition of the bipartite graph."""
    if len(labels) != graph.n_nodes:
        raise DataError("labels must assign a community to every node")
    n_edges = graph.n_edges
    if n_edges == 0:
        return 0.0
    adjacency = graph.adjacency().tocoo()
    degrees = graph.degrees()
    intra: Dict[int, float] = {}
    degree_sum: Dict[int, float] = {}
    for node in range(graph.n_nodes):
        degree_sum[int(labels[node])] = degree_sum.get(int(labels[node]), 0.0) + degrees[node]
    for source, target in zip(adjacency.row, adjacency.col):
        if source < target and labels[source] == labels[target]:
            label = int(labels[source])
            intra[label] = intra.get(label, 0.0) + 1.0
    total = 0.0
    for label, degree in degree_sum.items():
        e_c = intra.get(label, 0.0)
        total += e_c / n_edges - (degree / (2.0 * n_edges)) ** 2
    return total


class GreedyModularityCommunities:
    """Agglomerative greedy modularity maximisation (non-overlapping).

    Parameters
    ----------
    min_communities:
        Stop merging when this many communities remain even if a merge would
        still improve modularity (defaults to 1, i.e. purely greedy).
    """

    def __init__(self, min_communities: int = 1) -> None:
        if min_communities < 1:
            raise DataError("min_communities must be at least 1")
        self.min_communities = min_communities
        self.labels_: Optional[np.ndarray] = None
        self.modularity_: Optional[float] = None
        self._graph: Optional[BipartiteGraph] = None

    def fit(self, matrix: InteractionMatrix) -> "GreedyModularityCommunities":
        """Detect communities on the bipartite graph of ``matrix``."""
        graph = BipartiteGraph(matrix)
        n_nodes = graph.n_nodes
        n_edges = graph.n_edges
        if n_edges == 0:
            raise DataError("cannot detect communities in a graph with no edges")
        degrees = graph.degrees()

        # Community bookkeeping: every node starts alone.
        labels = np.arange(n_nodes)
        community_degree: Dict[int, float] = {node: float(degrees[node]) for node in range(n_nodes)}
        # Edge counts between communities (upper-triangular dict-of-dicts).
        between: Dict[Tuple[int, int], float] = {}
        adjacency = graph.adjacency().tocoo()
        for source, target in zip(adjacency.row, adjacency.col):
            if source < target:
                key = (int(source), int(target))
                between[key] = between.get(key, 0.0) + 1.0

        intra: Dict[int, float] = {node: 0.0 for node in range(n_nodes)}
        active = set(range(n_nodes))

        def merge_gain(a: int, b: int) -> float:
            """Modularity change from merging communities a and b."""
            e_ab = between.get((min(a, b), max(a, b)), 0.0)
            return e_ab / n_edges - community_degree[a] * community_degree[b] / (
                2.0 * n_edges * n_edges
            )

        while len(active) > self.min_communities:
            best_pair: Optional[Tuple[int, int]] = None
            best_gain = 0.0
            for (a, b), count in between.items():
                if count <= 0 or a not in active or b not in active:
                    continue
                gain = merge_gain(a, b)
                if gain > best_gain + 1e-15:
                    best_gain = gain
                    best_pair = (a, b)
            if best_pair is None:
                break
            a, b = best_pair
            # Merge b into a.
            intra[a] = intra[a] + intra[b] + between.pop((min(a, b), max(a, b)), 0.0)
            community_degree[a] += community_degree[b]
            labels[labels == b] = a
            active.discard(b)
            # Re-route b's between-community edges to a.
            for (x, y) in list(between.keys()):
                if b in (x, y):
                    count = between.pop((x, y))
                    other = y if x == b else x
                    if other == a:
                        intra[a] += count
                        continue
                    key = (min(a, other), max(a, other))
                    between[key] = between.get(key, 0.0) + count

        # Relabel communities to 0..k-1 for cleanliness.
        unique = {label: index for index, label in enumerate(sorted(set(int(l) for l in labels)))}
        self.labels_ = np.asarray([unique[int(label)] for label in labels], dtype=np.int64)
        self._graph = graph
        self.modularity_ = modularity(graph, self.labels_)
        return self

    @property
    def n_communities(self) -> int:
        """Number of detected communities."""
        if self.labels_ is None:
            raise DataError("fit must be called before inspecting communities")
        return int(self.labels_.max()) + 1

    def communities(self) -> List[Community]:
        """Detected communities as user/item member sets (non-overlapping)."""
        if self.labels_ is None or self._graph is None:
            raise DataError("fit must be called before inspecting communities")
        return self._graph.communities_from_labels(self.labels_)

    def user_communities(self) -> List[np.ndarray]:
        """User membership arrays of the detected communities (may be empty)."""
        return [community.users for community in self.communities()]

    def item_communities(self) -> List[np.ndarray]:
        """Item membership arrays of the detected communities (may be empty)."""
        return [community.items for community in self.communities()]
