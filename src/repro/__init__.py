"""repro — reproduction of "Scalable and Interpretable Product Recommendations
via Overlapping Co-Clustering" (Heckel, Vlachos, Parnell, Duenner; ICDE 2017).

The package implements the OCuLaR family of recommenders, the baselines the
paper compares against, the community-detection comparators of its Figure 2,
and the full evaluation/benchmark harness that regenerates every table and
figure of the paper's experimental section.

Quick start::

    from repro import OCuLaR
    from repro.data import make_movielens_like, train_test_split
    from repro.evaluation import evaluate_recommender

    matrix, _ = make_movielens_like()
    split = train_test_split(matrix, random_state=0)
    model = OCuLaR(n_coclusters=50, regularization=10.0, random_state=0).fit(split.train)
    print(evaluate_recommender(model, split, m=50).as_dict())
    print(model.explain(user=0, item=int(model.recommend(0, 1)[0])).to_text())
"""

from repro.api import RecommendRequest, RecommendResponse
from repro.base import Recommender
from repro.core.ocular import OCuLaR
from repro.core.r_ocular import ROCuLaR
from repro.core.bias import BiasedOCuLaR
from repro.core.factors import FactorModel
from repro.core.io import load_model, save_model
from repro.data.interactions import InteractionMatrix
from repro.exceptions import (
    ReproError,
    DataError,
    ConfigurationError,
    NotFittedError,
    EvaluationError,
)

__version__ = "1.0.0"

__all__ = [
    "Recommender",
    "RecommendRequest",
    "RecommendResponse",
    "OCuLaR",
    "ROCuLaR",
    "BiasedOCuLaR",
    "FactorModel",
    "InteractionMatrix",
    "save_model",
    "load_model",
    "ReproError",
    "DataError",
    "ConfigurationError",
    "NotFittedError",
    "EvaluationError",
    "__version__",
]
