"""Serving hot-path experiment: zero-allocation engine versus the legacy loop.

The serving rewrite claims three things on a large catalogue: (1) steady
state performs **zero** score-block allocations (pooled buffers, flat
results), (2) the float64 path stays exactly the reference ranking, and
(3) the float32 path buys bandwidth without losing ranking quality.  This
experiment pins all three against a faithful replica of the pre-rewrite
engine — fresh ``(chunk, n_items)`` allocation per chunk, the four-scratch-
array mask kernel, per-user Python list outputs — on a synthetic catalogue
big enough (100k items in full mode) that memory bandwidth, not Python,
is the contested resource.

No model fit is involved: serving only reads factor matrices, so the corpus
is a sparse random interaction matrix plus random non-negative factors, and
every engine under test scores identical bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.core.factors import FactorModel
from repro.data.interactions import InteractionMatrix
from repro.serving import TopNEngine, TopNResult
from repro.utils.rng import RandomStateLike, ensure_rng
from repro.utils.tables import format_table


class _LegacyTopNEngine:
    """The pre-rewrite serving hot loop, kept verbatim as the baseline.

    Per chunk: a fresh ``users @ item_factors.T`` allocation, a full negated
    copy, the position-arithmetic mask kernel (``arange(total)`` plus two
    ``repeat``\\ s — four full-size scratch arrays per chunk), argpartition
    selection, and one small Python array object appended per user.  This is
    what :class:`~repro.serving.engine.TopNEngine` shipped before the
    buffer-pool rewrite; the benchmark measures the rewrite against it on
    the same bytes.
    """

    def __init__(self, factors: FactorModel, train_matrix: InteractionMatrix, chunk_size: int):
        self.factors = factors
        self.train_matrix = train_matrix
        self.chunk_size = int(chunk_size)

    @staticmethod
    def _mask_seen(neg_scores: np.ndarray, rows: np.ndarray, csr: sp.csr_matrix) -> None:
        counts = np.diff(csr.indptr)[rows]
        total = int(counts.sum())
        if total == 0:
            return
        starts = csr.indptr[rows]
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        positions = np.repeat(starts, counts) + offsets
        chunk_rows = np.repeat(np.arange(rows.shape[0]), counts)
        neg_scores[chunk_rows, csr.indices[positions]] = np.inf

    def recommend_batch(
        self, users, n_items: int = 10, exclude_seen: bool = True
    ) -> List[np.ndarray]:
        user_array = np.asarray(list(users), dtype=np.int64)
        n = min(n_items, self.train_matrix.n_items)
        csr = self.train_matrix.csr() if exclude_seen else None
        rankings: List[np.ndarray] = []
        for start in range(0, user_array.size, self.chunk_size):
            chunk = user_array[start : start + self.chunk_size]
            scores = self.factors.user_factors[chunk] @ self.factors.item_factors.T
            np.negative(scores, out=scores)
            np.exp(scores, out=scores)
            scores -= 1.0
            neg_scores = scores
            if csr is not None:
                self._mask_seen(neg_scores, chunk, csr)
            top = np.argpartition(neg_scores, n - 1, axis=1)[:, :n]
            top_scores = np.take_along_axis(neg_scores, top, axis=1)
            order = np.argsort(top_scores, axis=1, kind="stable")
            ranked = np.take_along_axis(top, order, axis=1)
            ranked_scores = np.take_along_axis(top_scores, order, axis=1)
            finite = np.isfinite(ranked_scores)
            for i in range(ranked.shape[0]):
                rankings.append(ranked[i, finite[i]])
        return rankings


@dataclass
class ServingHotPathResult:
    """Measurements of the hot-path comparison on one synthetic catalogue.

    Attributes
    ----------
    n_users, n_items, n_coclusters, top_n:
        Corpus shape and list length served.
    legacy_seconds, flat64_seconds, flat32_seconds:
        Median wall-clock seconds to serve all users through the legacy
        engine, the rewritten float64 engine, and the float32 engine.
    float64_exact:
        Whether the rewritten float64 rankings equal the legacy rankings
        *and* the per-user reference kernel on the checked subsample — the
        rewrite must be a pure optimisation on the default path.
    float32_overlap:
        Mean fraction of each user's float64 top-N recovered by the
        float32 path (1.0 = identical lists).
    pool_allocations_after_warmup:
        Score-block allocations the pooled engines performed during the
        timed passes (must be 0 — the zero-allocation claim).
    pool_reuses:
        Pool buffer reuses over the timed passes (must be positive).
    effective_chunk:
        The autotuned rows-per-chunk the float64 engine actually used.
    """

    n_users: int
    n_items: int
    n_coclusters: int
    top_n: int
    legacy_seconds: float
    flat64_seconds: float
    flat32_seconds: float
    float64_exact: bool
    float32_overlap: float
    pool_allocations_after_warmup: int
    pool_reuses: int
    effective_chunk: int
    per_run_legacy_seconds: List[float] = field(default_factory=list)
    per_run_flat64_seconds: List[float] = field(default_factory=list)
    per_run_flat32_seconds: List[float] = field(default_factory=list)

    def _users_per_second(self, seconds: float) -> float:
        return self.n_users / seconds if seconds > 0 else float("inf")

    def legacy_users_per_second(self) -> float:
        return self._users_per_second(self.legacy_seconds)

    def flat64_users_per_second(self) -> float:
        return self._users_per_second(self.flat64_seconds)

    def flat32_users_per_second(self) -> float:
        return self._users_per_second(self.flat32_seconds)

    def speedup64(self) -> float:
        """Float64 rewritten engine over the legacy engine (same precision)."""
        if self.flat64_seconds <= 0:
            return float("inf")
        return self.legacy_seconds / self.flat64_seconds

    def speedup(self) -> float:
        """Headline: float32 serving over the legacy float64 engine."""
        if self.flat32_seconds <= 0:
            return float("inf")
        return self.legacy_seconds / self.flat32_seconds

    def to_text(self) -> str:
        rows = [
            [
                "legacy (alloc per chunk)",
                f"{self.legacy_seconds:.3f}",
                f"{self.legacy_users_per_second():,.0f}",
                "1.0x",
            ],
            [
                "flat float64 (pooled)",
                f"{self.flat64_seconds:.3f}",
                f"{self.flat64_users_per_second():,.0f}",
                f"{self.speedup64():.2f}x",
            ],
            [
                "flat float32 (pooled)",
                f"{self.flat32_seconds:.3f}",
                f"{self.flat32_users_per_second():,.0f}",
                f"{self.speedup():.2f}x",
            ],
        ]
        header = (
            f"Serving hot path — {self.n_users:,} users x {self.n_items:,} items, "
            f"K={self.n_coclusters}, top-{self.top_n}, "
            f"effective chunk {self.effective_chunk}"
        )
        table = format_table(["engine", "seconds", "users/s", "speedup"], rows)
        verdict = (
            f"float64 exact: {self.float64_exact}, "
            f"float32 top-N overlap: {self.float32_overlap:.4f}, "
            f"score-block allocations after warm-up: "
            f"{self.pool_allocations_after_warmup} "
            f"(reuses: {self.pool_reuses})"
        )
        return "\n".join([header, table, verdict])


def _make_sparse_corpus(
    n_users: int,
    n_items: int,
    positives_per_user: int,
    rng: np.random.Generator,
) -> InteractionMatrix:
    """A sparse random corpus: ``positives_per_user`` distinct items per user.

    Built directly in CSR form — a dense mask at 100k items would cost more
    memory than the benchmark itself.
    """
    counts = rng.integers(1, 2 * positives_per_user + 1, size=n_users)
    indptr = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int64)
    for user in range(n_users):
        start, stop = indptr[user], indptr[user + 1]
        indices[start:stop] = rng.choice(n_items, size=stop - start, replace=False)
        indices[start:stop].sort()
    data = np.ones(indptr[-1], dtype=np.float64)
    csr = sp.csr_matrix((data, indices, indptr), shape=(n_users, n_items))
    return InteractionMatrix.from_validated_csr(csr)


def _reference_ranking(
    factors: FactorModel, train_csr: sp.csr_matrix, user: int, n_items: int
) -> np.ndarray:
    """The per-user reference kernel (``Recommender.recommend``), inlined.

    Identical operation sequence: full scores, ``-inf`` over the seen items,
    ``argpartition(-scores)``, stable sort of the selected entries, finite
    filter.
    """
    scores = 1.0 - np.exp(-(factors.user_factors[user] @ factors.item_factors.T))
    row = train_csr.indices[train_csr.indptr[user] : train_csr.indptr[user + 1]]
    scores[row] = -np.inf
    n = min(n_items, scores.shape[0])
    top = np.argpartition(-scores, n - 1)[:n]
    ranked = top[np.argsort(-scores[top], kind="stable")]
    return ranked[np.isfinite(scores[ranked])]


def _topn_overlap(reference, candidate) -> float:
    overlaps = []
    for ref_row, cand_row in zip(reference, candidate):
        if len(ref_row) == 0:
            continue
        ref = set(np.asarray(ref_row).tolist())
        overlaps.append(len(ref & set(np.asarray(cand_row).tolist())) / len(ref))
    return float(np.mean(overlaps)) if overlaps else 1.0


def run_serving_hotpath(
    n_users: int = 2_048,
    n_items: int = 100_000,
    n_coclusters: int = 32,
    top_n: int = 10,
    n_repeats: int = 2,
    positives_per_user: int = 20,
    legacy_chunk_size: int = 256,
    buffer_budget_mb: Optional[float] = None,
    n_reference_checks: int = 32,
    random_state: RandomStateLike = 0,
) -> ServingHotPathResult:
    """Time the rewritten serving engines against the legacy hot loop.

    All engines score the same random non-negative factors over the same
    sparse corpus.  The legacy engine runs at ``legacy_chunk_size`` rows per
    chunk (its per-chunk allocation is ``chunk × n_items`` float64 — 256
    rows is already 200 MB at 100k items); the rewritten engines autotune
    their chunk against the buffer budget.  Median of ``n_repeats`` timed
    passes after one warm-up pass per engine.
    """
    rng = ensure_rng(random_state)
    matrix = _make_sparse_corpus(n_users, n_items, positives_per_user, rng)
    factors = FactorModel(
        rng.random((n_users, n_coclusters)) * 0.5,
        rng.random((n_items, n_coclusters)) * 0.5,
    )
    users = list(range(n_users))

    legacy = _LegacyTopNEngine(factors, matrix, chunk_size=legacy_chunk_size)
    flat64 = TopNEngine.from_factors(
        factors, matrix, buffer_budget_mb=buffer_budget_mb
    )
    flat32 = TopNEngine.from_factors(
        factors, matrix, dtype="float32", buffer_budget_mb=buffer_budget_mb
    )

    # Warm-up: BLAS thread spin-up, CSR materialisation, pool population.
    legacy_rankings = legacy.recommend_batch(users, n_items=top_n)
    flat64.topn(users, n_items=top_n)
    flat32.topn(users, n_items=top_n)
    allocations_at_warmup = (
        flat64.pool.stats().allocations + flat32.pool.stats().allocations
    )
    reuses_at_warmup = flat64.pool.stats().reuses + flat32.pool.stats().reuses

    legacy_times: List[float] = []
    for _ in range(n_repeats):
        start = time.perf_counter()
        legacy_rankings = legacy.recommend_batch(users, n_items=top_n)
        legacy_times.append(time.perf_counter() - start)

    flat64_times: List[float] = []
    flat64_result = TopNResult.empty()
    for _ in range(n_repeats):
        start = time.perf_counter()
        flat64_result = flat64.topn(users, n_items=top_n)
        flat64_times.append(time.perf_counter() - start)

    flat32_times: List[float] = []
    flat32_result = TopNResult.empty()
    for _ in range(n_repeats):
        start = time.perf_counter()
        flat32_result = flat32.topn(users, n_items=top_n)
        flat32_times.append(time.perf_counter() - start)

    # Correctness: the float64 rewrite must be exact — against the legacy
    # engine on every user, and against the per-user reference kernel on a
    # subsample (the legacy engine and the reference share their kernels, so
    # the subsample guards the *comparison*, not just the refactor).
    float64_exact = flat64_result == legacy_rankings
    train_csr = matrix.csr()
    check_users = rng.choice(n_users, size=min(n_reference_checks, n_users), replace=False)
    for user in check_users:
        reference = _reference_ranking(factors, train_csr, int(user), top_n)
        if not np.array_equal(flat64_result[int(user)], reference):
            float64_exact = False
            break

    float32_overlap = _topn_overlap(flat64_result, flat32_result)

    pool_allocations = (
        flat64.pool.stats().allocations
        + flat32.pool.stats().allocations
        - allocations_at_warmup
    )
    pool_reuses = (
        flat64.pool.stats().reuses + flat32.pool.stats().reuses - reuses_at_warmup
    )

    return ServingHotPathResult(
        n_users=n_users,
        n_items=n_items,
        n_coclusters=n_coclusters,
        top_n=top_n,
        legacy_seconds=float(np.median(legacy_times)),
        flat64_seconds=float(np.median(flat64_times)),
        flat32_seconds=float(np.median(flat32_times)),
        float64_exact=bool(float64_exact),
        float32_overlap=float32_overlap,
        pool_allocations_after_warmup=int(pool_allocations),
        pool_reuses=int(pool_reuses),
        effective_chunk=flat64.effective_chunk_size(),
        per_run_legacy_seconds=legacy_times,
        per_run_flat64_seconds=flat64_times,
        per_run_flat32_seconds=flat32_times,
    )
