"""Toy-example experiments: Figures 1, 2 and 3.

``run_toy_example`` fits OCuLaR on the 12x12 overlapping co-cluster matrix
and reports the probability grid, the held-out recommendations recovered and
the rationale for the paper's headline recommendation (item 4 to user 6).
``run_community_comparison`` runs the greedy-modularity and BIGCLAM
comparators on the same matrix and counts how many of the three candidate
recommendations their (co-)communities cover — the paper's Figure 2 point is
that generic community detection recovers only one of the three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.community.bigclam import BigClam
from repro.community.modularity import GreedyModularityCommunities
from repro.core.explain import Explanation
from repro.core.ocular import OCuLaR
from repro.core.render import render_matrix, render_probability_matrix
from repro.data.synthetic import PlantedCoClusters, make_paper_toy_example
from repro.utils.rng import RandomStateLike


@dataclass
class ToyExampleResult:
    """Outcome of fitting OCuLaR on the Figure 1/3 toy matrix.

    Attributes
    ----------
    dataset:
        The planted toy data (matrix, ground-truth co-clusters, holes).
    headline_confidence:
        Fitted ``P[r = 1]`` for the paper's headline pair (user 6, item 4).
    headline_rank:
        Rank of item 4 among user 6's unknown items (1 = top recommendation).
    holes_recovered_at_1:
        How many of the three held-out pairs are each user's top-1
        recommendation.
    explanation:
        The generated rationale for (user 6, item 4).
    matrix_text, probability_text:
        ASCII renderings of the input matrix and the fitted probabilities.
    """

    dataset: PlantedCoClusters
    headline_confidence: float
    headline_rank: int
    holes_recovered_at_1: int
    explanation: Explanation
    matrix_text: str
    probability_text: str
    model: OCuLaR = None


HEADLINE_USER = 6
HEADLINE_ITEM = 4


def run_toy_example(
    n_coclusters: int = 3,
    regularization: float = 0.05,
    max_iterations: int = 500,
    n_restarts: int = 5,
    random_state: RandomStateLike = 0,
) -> ToyExampleResult:
    """Fit OCuLaR on the paper's toy matrix and reproduce the Figure 3 output.

    The likelihood is non-convex and the toy problem is tiny, so the fit is
    repeated from ``n_restarts`` random initialisations and the solution with
    the lowest objective is kept (the usual practice for K this small).
    """
    import warnings

    dataset = make_paper_toy_example()
    model: OCuLaR | None = None
    base_seed = int(np.random.default_rng(
        random_state if isinstance(random_state, (int, np.integer)) else None
    ).integers(0, 2**31 - 1)) if not isinstance(random_state, (int, np.integer)) else int(random_state)
    for restart in range(max(1, n_restarts)):
        candidate = OCuLaR(
            n_coclusters=n_coclusters,
            regularization=regularization,
            max_iterations=max_iterations,
            random_state=base_seed + restart,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            candidate.fit(dataset.matrix)
        if model is None or candidate.history_.final_objective < model.history_.final_objective:
            model = candidate
    assert model is not None

    scores = model.score_user(HEADLINE_USER)
    seen = set(dataset.matrix.items_of_user(HEADLINE_USER).tolist())
    unknown_items = [item for item in range(dataset.matrix.n_items) if item not in seen]
    order = sorted(unknown_items, key=lambda item: -scores[item])
    headline_rank = order.index(HEADLINE_ITEM) + 1 if HEADLINE_ITEM in order else -1

    holes_recovered = 0
    for user, item in dataset.heldout_pairs:
        top = model.recommend(user, n_items=1, exclude_seen=True)
        if len(top) and int(top[0]) == item:
            holes_recovered += 1

    explanation = model.explain(HEADLINE_USER, HEADLINE_ITEM)
    return ToyExampleResult(
        dataset=dataset,
        headline_confidence=model.predict_proba(HEADLINE_USER, HEADLINE_ITEM),
        headline_rank=headline_rank,
        holes_recovered_at_1=holes_recovered,
        explanation=explanation,
        matrix_text=render_matrix(dataset.matrix),
        probability_text=render_probability_matrix(model.factors_, dataset.matrix, max_users=12, max_items=12),
        model=model,
    )


@dataclass
class CommunityComparisonResult:
    """Outcome of the Figure 2 comparison on the toy matrix.

    For each method, records how many of the held-out candidate
    recommendations are *covered*: the pair (user, item) is covered when some
    detected community/co-cluster contains both the user and the item.
    """

    heldout_pairs: List[Tuple[int, int]]
    coverage: Dict[str, int] = field(default_factory=dict)
    n_communities: Dict[str, int] = field(default_factory=dict)

    @property
    def n_candidates(self) -> int:
        """Number of candidate recommendations planted in the toy matrix."""
        return len(self.heldout_pairs)


def _pairs_covered(
    pairs: Sequence[Tuple[int, int]],
    user_sets: Sequence[np.ndarray],
    item_sets: Sequence[np.ndarray],
) -> int:
    """Count pairs contained in at least one (user-set, item-set) block."""
    covered = 0
    for user, item in pairs:
        for users, items in zip(user_sets, item_sets):
            if user in set(int(x) for x in users) and item in set(int(x) for x in items):
                covered += 1
                break
    return covered


def run_community_comparison(
    n_communities: int = 3,
    random_state: RandomStateLike = 0,
) -> CommunityComparisonResult:
    """Reproduce Figure 2: generic community detection misses the overlaps."""
    dataset = make_paper_toy_example()
    result = CommunityComparisonResult(heldout_pairs=list(dataset.heldout_pairs))

    modularity = GreedyModularityCommunities().fit(dataset.matrix)
    result.coverage["modularity"] = _pairs_covered(
        dataset.heldout_pairs, modularity.user_communities(), modularity.item_communities()
    )
    result.n_communities["modularity"] = modularity.n_communities

    bigclam = BigClam(
        n_communities=n_communities, max_iterations=150, random_state=random_state
    ).fit(dataset.matrix)
    result.coverage["bigclam"] = _pairs_covered(
        dataset.heldout_pairs, bigclam.user_communities(), bigclam.item_communities()
    )
    result.n_communities["bigclam"] = len(bigclam.communities())

    toy = run_toy_example(n_coclusters=n_communities, random_state=random_state)
    # OCuLaR produces a ranked recommendation list, so its candidates are the
    # top-1 recommendations rather than bare community membership — this is
    # exactly the paper's point about community detection not being directly
    # applicable to OCCF.
    result.coverage["ocular"] = toy.holes_recovered_at_1
    coclusters = toy.model.coclusters(membership_threshold=0.5)
    result.n_communities["ocular"] = sum(1 for c in coclusters if not c.is_empty)
    return result
