"""The model zoo: the six algorithms of Table I with sensible defaults.

The paper grid-searches each method's hyper-parameters and reports the best
configuration; at reproduction scale a fixed, reasonable configuration per
method keeps the comparison honest (every method gets defaults of comparable
care) and the runtime bounded.  The zoo also exposes per-method parameter
grids used by the hyper-parameter search experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence

from repro.base import Recommender
from repro.baselines import (
    BPRRecommender,
    ItemKNNRecommender,
    PopularityRecommender,
    UserKNNRecommender,
    WeightedALSRecommender,
)
from repro.core.ocular import OCuLaR
from repro.core.r_ocular import ROCuLaR
from repro.utils.rng import RandomStateLike

#: Canonical method names, in the column order of the paper's Table I.
MODEL_NAMES: Sequence[str] = (
    "OCuLaR",
    "R-OCuLaR",
    "wALS",
    "BPR",
    "user-based",
    "item-based",
)

ModelFactory = Callable[[], Recommender]


def build_model_zoo(
    n_coclusters: int = 20,
    regularization: float = 15.0,
    n_factors: int = 32,
    n_neighbors: int = 50,
    max_iterations: int = 100,
    random_state: RandomStateLike = 0,
    include_popularity: bool = False,
) -> Dict[str, ModelFactory]:
    """Factories for the Table I algorithms, keyed by their paper names.

    Parameters
    ----------
    n_coclusters, regularization, max_iterations:
        OCuLaR / R-OCuLaR hyper-parameters.
    n_factors:
        Latent dimension for wALS and BPR.
    n_neighbors:
        Neighbourhood size for the kNN baselines.
    random_state:
        Seed passed to all stochastic models.
    include_popularity:
        Also include the popularity floor under the key ``"popularity"``.
    """
    zoo: Dict[str, ModelFactory] = {
        "OCuLaR": lambda: OCuLaR(
            n_coclusters=n_coclusters,
            regularization=regularization,
            max_iterations=max_iterations,
            random_state=random_state,
        ),
        "R-OCuLaR": lambda: ROCuLaR(
            n_coclusters=n_coclusters,
            regularization=regularization,
            max_iterations=max_iterations,
            random_state=random_state,
        ),
        "wALS": lambda: WeightedALSRecommender(
            n_factors=n_factors,
            unknown_weight=0.01,
            regularization=0.01,
            n_iterations=12,
            random_state=random_state,
        ),
        "BPR": lambda: BPRRecommender(
            n_factors=n_factors,
            learning_rate=0.05,
            regularization=0.002,
            n_epochs=25,
            random_state=random_state,
        ),
        "user-based": lambda: UserKNNRecommender(n_neighbors=n_neighbors),
        "item-based": lambda: ItemKNNRecommender(n_neighbors=n_neighbors),
    }
    if include_popularity:
        zoo["popularity"] = lambda: PopularityRecommender()
    return zoo


def default_parameter_grids(small: bool = True) -> Mapping[str, Mapping[str, List]]:
    """Per-method hyper-parameter grids for model-selection experiments.

    ``small=True`` returns the coarse grids used in the (CPU-style) Table I
    protocol; ``small=False`` returns wider grids of the kind the paper's GPU
    implementation makes affordable (Figure 9).
    """
    if small:
        return {
            "OCuLaR": {"n_coclusters": [20, 40], "regularization": [1.0, 10.0]},
            "R-OCuLaR": {"n_coclusters": [20, 40], "regularization": [1.0, 10.0]},
            "wALS": {"n_factors": [16, 32]},
            "BPR": {"n_factors": [16, 32], "regularization": [0.002, 0.01]},
            "user-based": {"n_neighbors": [20, 50, 100]},
            "item-based": {"n_neighbors": [20, 50, 100]},
        }
    return {
        "OCuLaR": {
            "n_coclusters": [10, 20, 40, 80, 120],
            "regularization": [0.0, 1.0, 5.0, 10.0, 30.0, 100.0],
        },
        "R-OCuLaR": {
            "n_coclusters": [10, 20, 40, 80, 120],
            "regularization": [0.0, 1.0, 5.0, 10.0, 30.0, 100.0],
        },
        "wALS": {"n_factors": [8, 16, 32, 64]},
        "BPR": {"n_factors": [8, 16, 32, 64], "regularization": [0.0, 0.002, 0.01, 0.05]},
        "user-based": {"n_neighbors": [10, 20, 50, 100, 200]},
        "item-based": {"n_neighbors": [10, 20, 50, 100, 200]},
    }
