"""Training hot-path experiment: pooled sweep kernels versus the legacy loop.

The zero-allocation sweep rewrite claims two things: (1) after warm-up a
projected-gradient sweep performs **zero** large scratch allocations —
every gather block, nnz temporary and sparse operator comes from the plan
side's pooled workspace — and (2) the float64 factors are bit-for-bit what
the pre-rewrite allocating kernel produced, because identical operations
run in identical order and only the storage is reused.  This experiment
pins both against :class:`_LegacySweepBackend`, a faithful replica of the
pre-rewrite ``VectorizedBackend`` hot loop (two ``sp.csr_matrix``
constructions per sweep, fancy-index gathers, ``np.arange``/``np.repeat``
machinery per backtrack), frozen here the way the serving benchmark froze
``_LegacyTopNEngine``.

Both engines run the same alternating item/user sweep trajectory from the
same random non-negative factors, so they perform identical mathematics on
identical bytes; the run asserts ``np.array_equal`` on the final factors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends import VectorizedBackend
from repro.core.backends.base import Backend, SweepStats
from repro.core.backends.plan import SweepPlan, SweepSide
from repro.core.objective import gradient_ratio, safe_log1mexp
from repro.utils.rng import RandomStateLike, ensure_rng
from repro.utils.tables import format_table


class _LegacySweepBackend(Backend):
    """The pre-rewrite vectorized sweep kernel, kept verbatim as the baseline.

    Per sweep: fancy-index ``(nnz, k)`` gathers for the affinity pass, two
    ``sp.csr_matrix`` constructions (validation included — one of them, the
    positives operator, has data that never changes during a fit), fresh
    nnz-sized temporaries for ratios and log terms, a float64
    ``np.bincount`` reduction, and per-backtrack ``np.arange``/``np.repeat``
    entry-position machinery in ``_candidate_objectives``.  This is what
    :class:`~repro.core.backends.vectorized.VectorizedBackend` shipped
    before the workspace rewrite; the benchmark measures the rewrite
    against it on the same bytes.
    """

    name = "legacy-vectorized"

    def _sweep_rows(
        self,
        plan: SweepSide,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        start: int,
        stop: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, SweepStats]:
        indptr = plan.matrix.indptr
        first, last = int(indptr[start]), int(indptr[stop])
        n_local = stop - start
        local_factors = row_factors[start:stop]

        entry_rows = plan.row_index[first:last] - start
        entry_cols = plan.matrix.indices[first:last]
        entry_weights = (
            None if plan.entry_weights is None else plan.entry_weights[first:last]
        )
        local_indptr = indptr[start : stop + 1] - first
        local_shape = (n_local, plan.n_cols)

        affinities = np.einsum(
            "ij,ij->i", local_factors[entry_rows], col_factors[entry_cols]
        )
        ratios = gradient_ratio(affinities)
        if entry_weights is not None:
            ratios = ratios * entry_weights
        scatter = sp.csr_matrix((ratios, entry_cols, local_indptr), shape=local_shape)
        gradient_positive = scatter @ col_factors

        positives = sp.csr_matrix(
            (plan.matrix.data[first:last], entry_cols, local_indptr), shape=local_shape
        )
        positive_sums = positives @ col_factors
        unknown_sums = total_col_sum[np.newaxis, :] - positive_sums

        gradients = (
            -gradient_positive + unknown_sums + 2.0 * regularization * local_factors
        )

        log_terms = safe_log1mexp(affinities)
        if entry_weights is not None:
            log_terms = log_terms * entry_weights
        positive_part = -np.bincount(entry_rows, weights=log_terms, minlength=n_local)
        unknown_part = np.einsum("ij,ij->i", local_factors, unknown_sums)
        penalty = regularization * np.einsum("ij,ij->i", local_factors, local_factors)
        current_values = positive_part + unknown_part + penalty

        new_factors = local_factors.copy()
        step_sizes = np.ones(n_local, dtype=row_factors.dtype)
        active = np.ones(n_local, dtype=bool)
        n_backtracks = 0

        for _ in range(max_backtracks + 1):
            if not active.any():
                break
            active_rows = np.flatnonzero(active)
            candidates = np.maximum(
                0.0,
                local_factors[active_rows]
                - step_sizes[active_rows, np.newaxis] * gradients[active_rows],
            )
            candidate_values = self._candidate_objectives(
                plan,
                candidates,
                active_rows,
                start,
                col_factors,
                unknown_sums,
                regularization,
            )
            differences = candidates - local_factors[active_rows]
            armijo_rhs = sigma * np.einsum(
                "ij,ij->i", gradients[active_rows], differences
            )
            accepted = (candidate_values - current_values[active_rows]) <= armijo_rhs

            accepted_rows = active_rows[accepted]
            new_factors[accepted_rows] = candidates[accepted]
            active[accepted_rows] = False
            n_backtracks += int(np.count_nonzero(~accepted))
            step_sizes[active] *= beta

        n_accepted = int(n_local - np.count_nonzero(active))
        stats = SweepStats(
            n_rows=n_local, n_accepted=n_accepted, n_backtracks=n_backtracks
        )
        return new_factors, stats

    @staticmethod
    def _candidate_objectives(
        plan: SweepSide,
        candidate_factors: np.ndarray,
        active_rows: np.ndarray,
        start: int,
        col_factors: np.ndarray,
        unknown_sums: np.ndarray,
        regularization: float,
    ) -> np.ndarray:
        n_active = len(active_rows)
        indptr, indices = plan.matrix.indptr, plan.matrix.indices
        global_rows = active_rows + start
        counts = (indptr[global_rows + 1] - indptr[global_rows]).astype(np.int64)
        total_entries = int(counts.sum())

        if total_entries:
            starts = indptr[global_rows].astype(np.int64)
            offsets = np.arange(total_entries) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            entry_positions = np.repeat(starts, counts) + offsets
            rows_entries = np.repeat(np.arange(n_active), counts)
            cols_entries = indices[entry_positions]

            affinities = np.einsum(
                "ij,ij->i",
                candidate_factors[rows_entries],
                col_factors[cols_entries],
            )
            log_terms = safe_log1mexp(affinities)
            if plan.entry_weights is not None:
                log_terms = log_terms * plan.entry_weights[entry_positions]
            positive_part = -np.bincount(
                rows_entries, weights=log_terms, minlength=n_active
            )
        else:
            positive_part = np.zeros(n_active)

        unknown_part = np.einsum(
            "ij,ij->i", candidate_factors, unknown_sums[active_rows]
        )
        penalty = regularization * np.einsum(
            "ij,ij->i", candidate_factors, candidate_factors
        )
        return positive_part + unknown_part + penalty


@dataclass
class TrainingHotPathResult:
    """Measurements of the sweep-kernel comparison on one synthetic corpus.

    Attributes
    ----------
    n_users, n_items, n_coclusters, nnz:
        Corpus shape: user/item counts, factor rank, positive entries.
    n_sweeps:
        Alternating (item + user) sweep pairs per timed pass.
    weighted:
        Whether per-user R-OCuLaR weights were active.
    legacy_seconds, pooled_seconds:
        Median wall-clock seconds for one full trajectory through the
        legacy replica and the pooled kernels.
    float64_exact:
        Whether the pooled trajectory's final factors (both sides) are
        ``np.array_equal`` to the legacy replica's — the bit-exactness
        claim.
    workspace_allocations_after_warmup:
        Workspace arenas built during the timed passes (must be 0 — the
        zero-allocation claim).
    workspace_reuses:
        Pooled-arena reuses over the timed passes (must be positive).
    peak_workspace_bytes:
        High-water scratch footprint across both plan sides.
    """

    n_users: int
    n_items: int
    n_coclusters: int
    nnz: int
    n_sweeps: int
    weighted: bool
    legacy_seconds: float
    pooled_seconds: float
    float64_exact: bool
    workspace_allocations_after_warmup: int
    workspace_reuses: int
    peak_workspace_bytes: int
    per_run_legacy_seconds: List[float] = field(default_factory=list)
    per_run_pooled_seconds: List[float] = field(default_factory=list)

    @property
    def rows_per_pass(self) -> int:
        """Row subproblems solved in one timed pass (both sweep directions)."""
        return (self.n_users + self.n_items) * self.n_sweeps

    @property
    def nnz_per_pass(self) -> int:
        """Positive entries visited in one timed pass (both directions)."""
        return 2 * self.nnz * self.n_sweeps

    def _rate(self, per_pass: int, seconds: float) -> float:
        return per_pass / seconds if seconds > 0 else float("inf")

    def legacy_rows_per_second(self) -> float:
        return self._rate(self.rows_per_pass, self.legacy_seconds)

    def pooled_rows_per_second(self) -> float:
        return self._rate(self.rows_per_pass, self.pooled_seconds)

    def legacy_nnz_per_second(self) -> float:
        return self._rate(self.nnz_per_pass, self.legacy_seconds)

    def pooled_nnz_per_second(self) -> float:
        return self._rate(self.nnz_per_pass, self.pooled_seconds)

    def speedup(self) -> float:
        """Headline: pooled sweep throughput over the legacy replica."""
        if self.pooled_seconds <= 0:
            return float("inf")
        return self.legacy_seconds / self.pooled_seconds

    def to_text(self) -> str:
        rows = [
            [
                "legacy (alloc per sweep)",
                f"{self.legacy_seconds:.3f}",
                f"{self.legacy_rows_per_second():,.0f}",
                f"{self.legacy_nnz_per_second():,.0f}",
                "1.0x",
            ],
            [
                "pooled workspaces",
                f"{self.pooled_seconds:.3f}",
                f"{self.pooled_rows_per_second():,.0f}",
                f"{self.pooled_nnz_per_second():,.0f}",
                f"{self.speedup():.2f}x",
            ],
        ]
        weighting = "R-OCuLaR weighted" if self.weighted else "unweighted"
        header = (
            f"Training hot path — {self.n_users:,} users x {self.n_items:,} items, "
            f"K={self.n_coclusters}, {self.nnz:,} positives, "
            f"{self.n_sweeps} sweep pairs, {weighting}"
        )
        table = format_table(
            ["kernel", "seconds", "rows/s", "nnz/s", "speedup"], rows
        )
        verdict = (
            f"float64 exact: {self.float64_exact}, "
            f"workspace allocations after warm-up: "
            f"{self.workspace_allocations_after_warmup} "
            f"(reuses: {self.workspace_reuses}, "
            f"peak scratch: {self.peak_workspace_bytes / 1e6:.1f} MB)"
        )
        return "\n".join([header, table, verdict])


def make_training_corpus(
    n_users: int,
    n_items: int,
    positives_per_user: int,
    rng: np.random.Generator,
) -> sp.csr_matrix:
    """A sparse random binary corpus with ~``positives_per_user`` per row."""
    counts = rng.integers(1, 2 * positives_per_user + 1, size=n_users)
    indptr = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int64)
    for user in range(n_users):
        start, stop = indptr[user], indptr[user + 1]
        indices[start:stop] = rng.choice(n_items, size=stop - start, replace=False)
        indices[start:stop].sort()
    data = np.ones(indptr[-1], dtype=np.float64)
    return sp.csr_matrix((data, indices, indptr), shape=(n_users, n_items))


def run_sweep_trajectory(
    backend: Backend,
    plan: SweepPlan,
    user_factors: np.ndarray,
    item_factors: np.ndarray,
    n_sweeps: int,
    regularization: float,
    max_backtracks: int = 20,
) -> Tuple[np.ndarray, np.ndarray]:
    """``n_sweeps`` alternating item/user sweeps — the trainer's inner loop."""
    users = user_factors.copy()
    items = item_factors.copy()
    for _ in range(n_sweeps):
        items, _ = backend.sweep(
            None,
            items,
            users,
            regularization,
            max_backtracks=max_backtracks,
            plan=plan.item_side,
        )
        users, _ = backend.sweep(
            None,
            users,
            items,
            regularization,
            max_backtracks=max_backtracks,
            plan=plan.user_side,
        )
    return users, items


def _store_totals(plan: SweepPlan) -> Tuple[int, int, int]:
    """(allocations, reuses, peak bytes) summed over both plan sides."""
    item = plan.item_side.workspaces.stats()
    user = plan.user_side.workspaces.stats()
    return (
        item.allocations + user.allocations,
        item.reuses + user.reuses,
        item.peak_bytes + user.peak_bytes,
    )


def run_training_hotpath(
    n_users: int = 1_500,
    n_items: int = 600,
    n_coclusters: int = 16,
    n_sweeps: int = 4,
    n_repeats: int = 2,
    positives_per_user: int = 12,
    regularization: float = 0.05,
    weighted: bool = False,
    random_state: RandomStateLike = 0,
) -> TrainingHotPathResult:
    """Time the pooled sweep kernels against the legacy allocating replica.

    Both kernels run the identical alternating sweep trajectory from the
    same random non-negative factors; the pooled side gets one un-timed
    warm-up pass (workspace construction is a once-per-fit cost), after
    which the timed passes must allocate nothing.  Median of ``n_repeats``
    timed passes per kernel; final factors asserted ``np.array_equal``.
    """
    rng = ensure_rng(random_state)
    matrix = make_training_corpus(n_users, n_items, positives_per_user, rng)
    user_weights: Optional[np.ndarray] = None
    if weighted:
        from repro.core.objective import relative_user_weights

        user_weights = relative_user_weights(matrix)
    user0 = rng.random((n_users, n_coclusters)) * 0.5
    item0 = rng.random((n_items, n_coclusters)) * 0.5

    legacy = _LegacySweepBackend()
    pooled = VectorizedBackend()
    # Separate plans per kernel: identical content (same matrix, weights,
    # dtype), but the pooled plan's sides own the workspace stores whose
    # counters the zero-allocation assertion reads.
    legacy_plan = SweepPlan.build(matrix, user_weights=user_weights)
    pooled_plan = SweepPlan.build(matrix, user_weights=user_weights)

    # Warm-up: builds both sides' workspaces (and spins BLAS threads up for
    # both kernels alike).
    run_sweep_trajectory(legacy, legacy_plan, user0, item0, 1, regularization)
    run_sweep_trajectory(pooled, pooled_plan, user0, item0, 1, regularization)
    allocations_at_warmup, reuses_at_warmup, _ = _store_totals(pooled_plan)

    legacy_times: List[float] = []
    legacy_users = legacy_items = None
    for _ in range(n_repeats):
        start = time.perf_counter()
        legacy_users, legacy_items = run_sweep_trajectory(
            legacy, legacy_plan, user0, item0, n_sweeps, regularization
        )
        legacy_times.append(time.perf_counter() - start)

    pooled_times: List[float] = []
    pooled_users = pooled_items = None
    for _ in range(n_repeats):
        start = time.perf_counter()
        pooled_users, pooled_items = run_sweep_trajectory(
            pooled, pooled_plan, user0, item0, n_sweeps, regularization
        )
        pooled_times.append(time.perf_counter() - start)

    float64_exact = np.array_equal(pooled_users, legacy_users) and np.array_equal(
        pooled_items, legacy_items
    )

    allocations, reuses, peak_bytes = _store_totals(pooled_plan)

    return TrainingHotPathResult(
        n_users=n_users,
        n_items=n_items,
        n_coclusters=n_coclusters,
        nnz=int(matrix.nnz),
        n_sweeps=n_sweeps,
        weighted=weighted,
        legacy_seconds=float(np.median(legacy_times)),
        pooled_seconds=float(np.median(pooled_times)),
        float64_exact=bool(float64_exact),
        workspace_allocations_after_warmup=int(allocations - allocations_at_warmup),
        workspace_reuses=int(reuses - reuses_at_warmup),
        peak_workspace_bytes=int(peak_bytes),
        per_run_legacy_seconds=legacy_times,
        per_run_pooled_seconds=pooled_times,
    )
