"""Deployment experiment: Figure 10 (B2B rationale with names and prices).

The paper's deployment shows, for a chosen client, the recommended product,
the confidence, the co-clusters supporting it (with the affiliated companies'
industries) and a price estimate based on historical purchases by related
clients.  ``run_deployment_example`` fits OCuLaR on the synthetic B2B corpus
and produces exactly that report for a handful of clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.coclusters import extract_coclusters
from repro.core.ocular import OCuLaR
from repro.core.recommend import RecommendationReport, batch_reports
from repro.core.render import render_coclusters
from repro.data.datasets import B2BDataset, make_b2b
from repro.utils.rng import RandomStateLike


@dataclass
class DeploymentResult:
    """Figure 10-style output: per-client reports plus co-cluster overview.

    Attributes
    ----------
    dataset:
        The synthetic B2B corpus the model was fitted on.
    reports:
        One recommendation report (with explanations and price estimates)
        per selected client.
    cocluster_overview:
        Text rendering of the discovered co-clusters with client/product
        names, the "buying pattern" view shown to sellers.
    n_recommendations_with_rationale:
        How many produced recommendations carry at least one co-cluster
        rationale bullet (the deployment requires every card to have one).
    n_recommendations_with_price:
        How many carry a price estimate.
    """

    dataset: B2BDataset
    reports: List[RecommendationReport] = field(default_factory=list)
    cocluster_overview: str = ""
    n_recommendations_with_rationale: int = 0
    n_recommendations_with_price: int = 0
    model: Optional[OCuLaR] = None

    @property
    def n_recommendations(self) -> int:
        """Total number of recommendation cards produced."""
        return sum(len(report.explanations) for report in self.reports)

    def to_text(self) -> str:
        """Render every client report, Figure 10 style."""
        lines = ["Figure 10 — deployment-style recommendation rationale (synthetic B2B data)"]
        for report in self.reports:
            lines.append("")
            lines.append(report.to_text())
        lines.append("")
        lines.append("Discovered buying patterns (co-clusters):")
        lines.append(self.cocluster_overview)
        return "\n".join(lines)


def run_deployment_example(
    n_clients: int = 300,
    n_products: int = 50,
    n_coclusters: int = 12,
    regularization: float = 2.0,
    n_reports: int = 3,
    recommendations_per_client: int = 3,
    random_state: RandomStateLike = 0,
) -> DeploymentResult:
    """Fit OCuLaR on the B2B corpus and produce seller-facing reports.

    The clients reported on are those with the largest purchase histories
    (the accounts a seller would care about most), which also makes the
    co-cluster evidence rich enough to be illustrative.
    """
    dataset = make_b2b(
        n_clients=n_clients, n_products=n_products, random_state=random_state
    )
    model = OCuLaR(
        n_coclusters=n_coclusters,
        regularization=regularization,
        max_iterations=80,
        random_state=random_state,
    ).fit(dataset.matrix)

    degrees = dataset.matrix.user_degrees()
    selected_clients = np.argsort(-degrees)[:n_reports]

    # The nightly-batch shape: every selected client is ranked in one pass
    # through the serving engine, then the explanation cards are rendered.
    reports = batch_reports(
        model,
        [int(client) for client in selected_clients],
        n_items=recommendations_per_client,
        deal_values=dataset.deal_values,
    )

    with_rationale = sum(
        1
        for report in reports
        for explanation in report.explanations
        if explanation.evidence
    )
    with_price = sum(
        1
        for report in reports
        for explanation in report.explanations
        if explanation.price_estimate is not None
    )

    coclusters = extract_coclusters(model.factors_, dataset.matrix, drop_empty=True)
    overview = render_coclusters(coclusters[:6], dataset.matrix, max_members=5)

    return DeploymentResult(
        dataset=dataset,
        reports=reports,
        cocluster_overview=overview,
        n_recommendations_with_rationale=with_rationale,
        n_recommendations_with_price=with_price,
        model=model,
    )
