"""Incremental-refit convergence study: warm starts on a drifting corpus.

The deployment the paper targets (Section VIII) retrains on a schedule while
the interaction corpus grows underneath it.  The ROADMAP question this module
answers: does seeding a refit from the previous generation's factors — with
new users/items folded in — reach the *same recall* as a cold retrain in
*fewer sweeps*?  The previous factors are a feasible point of the
non-negative block-coordinate program, so they should start close to the new
optimum whenever the drift is moderate.

:func:`make_drifting_corpus` builds the scenario deterministically: one grown
Netflix-like corpus is generated and split once, then rewound — a base block
of early users/items (minus a sampled set of late interactions) is what the
first full fit sees, and everything else arrives later as a delta.  Warm and
cold refits therefore train on the *identical* grown training matrix and are
evaluated against the *identical* held-out set; the only difference is the
starting point and the stopping rule.

:func:`run_incremental_study` runs the protocol end to end with a shared RNG
stream (one pre-seeded :class:`numpy.random.Generator` drives the base fit
and the cold refit, exercising the documented Generator contract of
:func:`repro.core.init.initialize_factors`) and reports sweeps, wall-clock
and recall@M per arm.  ``benchmarks/bench_incremental_refit.py`` drives the
same corpus through a :class:`~repro.runtime.RecommenderRuntime` on the warm
shared-memory executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.data.interactions import InteractionMatrix
from repro.data.splitting import Split, train_test_split
from repro.evaluation.evaluator import evaluate_recommender
from repro.exceptions import DataError
from repro.serving.fold_in import extend_factors
from repro.utils.rng import RandomStateLike, ensure_rng
from repro.utils.tables import format_table


@dataclass
class DriftingCorpus:
    """A grown corpus rewound into a base snapshot plus one delta.

    Attributes
    ----------
    base:
        The matrix the initial full fit trains on: the early-user/early-item
        block of the grown training matrix, minus the sampled late
        interactions.
    delta_pairs:
        Every training positive that is *not* in ``base`` — late
        interactions inside the base block plus all positives of the new
        users/items — as ``(user, item)`` pairs in grown coordinates.
    n_new_users, n_new_items:
        Rows/columns the delta appends to ``base``.
    split:
        The train/test split of the grown corpus.  ``split.train`` equals
        ``base.extended_with(delta_pairs, ...)`` exactly (asserted at build
        time), so refits on the ingested corpus are evaluated against a
        held-out set that never leaked into training.
    """

    base: InteractionMatrix
    delta_pairs: List[Tuple[int, int]]
    n_new_users: int
    n_new_items: int
    split: Split

    @property
    def drift(self) -> float:
        """Delta positives as a fraction of the base positives."""
        return len(self.delta_pairs) / max(self.base.nnz, 1)


def make_drifting_corpus(
    n_users: int = 2000,
    n_items: int = 600,
    n_base_users: Optional[int] = None,
    n_base_items: Optional[int] = None,
    late_fraction: float = 0.04,
    test_fraction: float = 0.25,
    random_state: RandomStateLike = 0,
) -> DriftingCorpus:
    """Build a drifting-corpus scenario from one grown synthetic corpus.

    The defaults give a ~10% drift on the full-size Netflix-like corpus —
    the moderate-drift regime warm starts are for (the runtime's ``auto``
    policy falls back to cold above its drift threshold).  Smaller corpora
    work but are noisier: with fewer positives per factor the non-convex
    landscape has many recall-inequivalent basins, and which one a refit
    lands in becomes seed luck.

    Parameters
    ----------
    n_users, n_items:
        Shape of the *grown* corpus (after all deltas arrive).
    n_base_users, n_base_items:
        Shape of the base snapshot (defaults: 96% of users, 98% of items —
        new items are rarer than new users in practice).
    late_fraction:
        Fraction of the base block's training positives sampled as "late"
        (they arrive with the delta, not the base snapshot).
    test_fraction:
        Held-out fraction of the grown corpus, split before rewinding.
    random_state:
        Seed or generator for the corpus, the split and the late sample.
    """
    if n_base_users is None:
        n_base_users = int(round(0.96 * n_users))
    if n_base_items is None:
        n_base_items = int(round(0.98 * n_items))
    if not 0 < n_base_users <= n_users or not 0 < n_base_items <= n_items:
        raise DataError(
            f"base shape ({n_base_users}, {n_base_items}) must be within the "
            f"grown shape ({n_users}, {n_items})"
        )
    if not 0 <= late_fraction < 1:
        raise DataError(f"late_fraction must lie in [0, 1), got {late_fraction}")
    rng = ensure_rng(random_state)

    grown, _spec = make_netflix_like(
        n_users=n_users, n_items=n_items, random_state=rng
    )
    split = train_test_split(grown, test_fraction=test_fraction, random_state=rng)
    train = split.train

    pairs = train.pairs()
    in_block = (pairs[:, 0] < n_base_users) & (pairs[:, 1] < n_base_items)
    block_rows = np.flatnonzero(in_block)
    n_late = int(round(late_fraction * len(block_rows)))
    late_rows = (
        rng.choice(block_rows, size=n_late, replace=False)
        if n_late
        else np.empty(0, dtype=np.int64)
    )
    late_mask = np.zeros(len(pairs), dtype=bool)
    late_mask[late_rows] = True

    base_mask = in_block & ~late_mask
    base_pairs = pairs[base_mask]
    base = InteractionMatrix.from_pairs(
        [(int(u), int(i)) for u, i in base_pairs],
        n_users=n_base_users,
        n_items=n_base_items,
    )
    delta_pairs = [(int(u), int(i)) for u, i in pairs[~base_mask]]

    corpus = DriftingCorpus(
        base=base,
        delta_pairs=delta_pairs,
        n_new_users=n_users - n_base_users,
        n_new_items=n_items - n_base_items,
        split=split,
    )
    # The rewind is exact by construction; guard it anyway — every
    # warm-vs-cold comparison below is meaningless if the ingested corpus
    # and the grown training matrix ever diverge.
    reconstructed = base.extended_with(
        delta_pairs,
        n_new_users=corpus.n_new_users,
        n_new_items=corpus.n_new_items,
    )
    if reconstructed != train:
        raise DataError("drifting-corpus rewind failed to reproduce the grown train matrix")
    return corpus


@dataclass
class RefitArm:
    """One refit strategy's outcome on the grown corpus."""

    name: str
    sweeps: int
    seconds: float
    recall: float
    objective: float
    stopped_on_plateau: bool = False


@dataclass
class IncrementalStudyResult:
    """Warm vs cold refit on one drifting corpus."""

    drift: float
    m: int
    base_sweeps: int
    arms: List[RefitArm] = field(default_factory=list)

    def arm(self, name: str) -> RefitArm:
        for candidate in self.arms:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    @property
    def sweep_ratio(self) -> float:
        """Warm sweeps over cold sweeps (the headline ≤ 0.5 claim)."""
        return self.arm("warm").sweeps / max(self.arm("cold").sweeps, 1)

    @property
    def recall_gap(self) -> float:
        """Cold recall minus warm recall (positive = warm is behind)."""
        return self.arm("cold").recall - self.arm("warm").recall

    def to_text(self) -> str:
        header = ["refit", "sweeps", "seconds", f"recall@{self.m}", "objective", "plateau-stop"]
        rows = [
            [
                arm.name,
                arm.sweeps,
                f"{arm.seconds:.3f}",
                f"{arm.recall:.4f}",
                f"{arm.objective:.1f}",
                "yes" if arm.stopped_on_plateau else "no",
            ]
            for arm in self.arms
        ]
        lines = [
            f"incremental refit on a drifting corpus — drift {self.drift:.1%}, "
            f"base fit {self.base_sweeps} sweeps",
            format_table(header, rows),
            f"warm/cold sweep ratio: {self.sweep_ratio:.2f}, "
            f"recall gap (cold - warm): {self.recall_gap:+.4f}",
        ]
        return "\n".join(lines)


def run_incremental_study(
    corpus: Optional[DriftingCorpus] = None,
    n_coclusters: int = 24,
    regularization: float = 5.0,
    max_iterations: int = 150,
    tolerance: float = 1e-5,
    plateau_tolerance: float = 3e-4,
    m: int = 50,
    random_state: RandomStateLike = 0,
    model_kwargs: Optional[Dict] = None,
) -> IncrementalStudyResult:
    """Fit the base snapshot, then refit the grown corpus warm and cold.

    One pre-seeded Generator drives every random initialisation (base fit
    and cold refit draw from the same advancing stream — the documented
    contract of :func:`repro.core.init.initialize_factors`), so the study is
    reproducible end to end from a single seed.  The warm arm seeds from the
    base fit's factors extended by fold-in and stops on objective plateau;
    the cold arm re-initialises and uses the model's configured stopping
    rule.  Both arms train on the identical grown training matrix and are
    evaluated on the identical held-out set.
    """
    if corpus is None:
        corpus = make_drifting_corpus(random_state=random_state)
    rng = ensure_rng(random_state)
    kwargs = dict(
        n_coclusters=n_coclusters,
        regularization=regularization,
        max_iterations=max_iterations,
        tolerance=tolerance,
        random_state=rng,
    )
    kwargs.update(model_kwargs or {})
    model = OCuLaR(**kwargs)

    model.fit(corpus.base)
    base_sweeps = model.history_.n_iterations
    grown = corpus.split.train

    # Warm arm: previous factors extended to the grown shape, plateau stop.
    initial = extend_factors(model, grown)
    start = time.perf_counter()
    model.fit(grown, initial_factors=initial, plateau_tolerance=plateau_tolerance)
    warm_seconds = time.perf_counter() - start
    warm = RefitArm(
        name="warm",
        sweeps=model.history_.n_iterations,
        seconds=warm_seconds,
        recall=evaluate_recommender(model, corpus.split, m=m).recall,
        objective=model.history_.final_objective,
        stopped_on_plateau=model.history_.stopped_on_plateau,
    )

    # Cold arm: fresh random factors from the same advancing RNG stream.
    start = time.perf_counter()
    model.fit(grown)
    cold_seconds = time.perf_counter() - start
    cold = RefitArm(
        name="cold",
        sweeps=model.history_.n_iterations,
        seconds=cold_seconds,
        recall=evaluate_recommender(model, corpus.split, m=m).recall,
        objective=model.history_.final_objective,
        stopped_on_plateau=model.history_.stopped_on_plateau,
    )

    return IncrementalStudyResult(
        drift=corpus.drift, m=m, base_sweeps=base_sweeps, arms=[warm, cold]
    )
