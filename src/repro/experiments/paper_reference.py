"""The paper's reported numbers, kept in one place.

Every benchmark prints the measured values side-by-side with these reference
values so EXPERIMENTS.md can record paper-vs-measured.  Absolute numbers are
not expected to match (the corpora here are synthetic stand-ins at laptop
scale); what should hold is the *shape*: which method wins, by roughly what
factor, and where crossovers / plateaus occur.
"""

from __future__ import annotations

from typing import Dict

#: Table I of the paper: MAP@50 and recall@50 per dataset and algorithm.
TABLE1_PAPER: Dict[str, Dict[str, Dict[str, float]]] = {
    "movielens": {
        "MAP@50": {
            "OCuLaR": 0.1809,
            "R-OCuLaR": 0.1805,
            "wALS": 0.1513,
            "BPR": 0.1434,
            "user-based": 0.1639,
            "item-based": 0.1329,
        },
        "recall@50": {
            "OCuLaR": 0.4021,
            "R-OCuLaR": 0.4086,
            "wALS": 0.3982,
            "BPR": 0.3587,
            "user-based": 0.3757,
            "item-based": 0.3238,
        },
    },
    "citeulike": {
        "MAP@50": {
            "OCuLaR": 0.0906,
            "R-OCuLaR": 0.0916,
            "wALS": 0.1003,
            "BPR": 0.0157,
            "user-based": 0.0882,
            "item-based": 0.1287,
        },
        "recall@50": {
            "OCuLaR": 0.3042,
            "R-OCuLaR": 0.3177,
            "wALS": 0.3331,
            "BPR": 0.0801,
            "user-based": 0.2699,
            "item-based": 0.2921,
        },
    },
    "b2b": {
        "MAP@50": {
            "OCuLaR": 0.1801,
            "R-OCuLaR": 0.1651,
            "wALS": 0.1749,
            "BPR": 0.1325,
            "user-based": 0.1797,
            "item-based": 0.1568,
        },
        "recall@50": {
            "OCuLaR": 0.5240,
            "R-OCuLaR": 0.4780,
            "wALS": 0.5283,
            "BPR": 0.4407,
            "user-based": 0.4995,
            "item-based": 0.4840,
        },
    },
}

#: Qualitative shape of Figure 5 (MovieLens curves): the OCuLaR variants sit
#: at or above every baseline for all M, and item-based is the weakest.
FIGURE5_PAPER_SHAPE: Dict[str, str] = {
    "best": "OCuLaR / R-OCuLaR (within noise of each other)",
    "mid": "wALS and user-based",
    "worst": "item-based and BPR at small M",
}

#: Headline quantitative claims from the rest of the evaluation section.
PAPER_CLAIMS: Dict[str, str] = {
    "fig3_confidence": "Item 4 is recommended to User 6 with confidence 0.83",
    "fig2_result": (
        "Modularity and BIGCLAM fail to recover the overlapping structure and "
        "identify only 1 of the 3 candidate recommendations"
    ),
    "fig6_regularization": (
        "either too little (lambda = 0) or too much regularization (lambda = 100) "
        "hurts the recommendation accuracy"
    ),
    "fig7_scaling": (
        "training time per iteration is linear in the number of positive examples "
        "and linear in the number of co-clusters K"
    ),
    "fig8_speedup": "the GPU implementation is 57x faster than the CPU implementation",
    "fig9_grid": (
        "the optimal (K, lambda) region lies outside the coarse grid used in the "
        "CPU-only experiments; a fine grid search finds better recall"
    ),
    "fig10_deployment": (
        "recommendations are delivered with a textual co-cluster rationale and a "
        "price estimate derived from the co-cluster members' historical purchases"
    ),
}


def paper_table1_rows(dataset: str) -> Dict[str, Dict[str, float]]:
    """Paper Table I rows for ``dataset`` (``movielens``, ``citeulike`` or ``b2b``)."""
    return TABLE1_PAPER[dataset]
