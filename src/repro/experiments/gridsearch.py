"""Grid-search experiment: Figure 9 (fine (K, lambda) heat-map on the B2B data).

The paper runs 625 (K, lambda) pairs over Spark + GPUs and shows the optimal
region lies outside the coarse grid used for the CPU-only Table I experiment.
The reproduction runs a (smaller) fine grid over the synthetic B2B corpus,
optionally in parallel across processes, renders the recall@50 heat-map as a
text table and reports whether the fine-grid optimum beats the best value
found inside the coarse-grid region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ocular import OCuLaR
from repro.data.datasets import make_b2b
from repro.evaluation.grid_search import GridSearchResult, grid_search
from repro.utils.rng import RandomStateLike
from repro.utils.tables import format_table

#: The coarse "CPU-only" grid range quoted in the paper (K and lambda in 100-200).
COARSE_RANGE: Dict[str, Tuple[float, float]] = {"n_coclusters": (10, 20), "regularization": (5.0, 20.0)}


@dataclass
class OcularBuilder:
    """Picklable OCuLaR factory used by the (possibly multi-process) grid search.

    A plain module-level callable (rather than a closure) so that
    :class:`repro.parallel.ProcessExecutor` can ship it to worker processes.
    """

    max_iterations: int = 40
    random_state: Any = 0

    def __call__(self, n_coclusters: int, regularization: float) -> OCuLaR:
        return OCuLaR(
            n_coclusters=n_coclusters,
            regularization=regularization,
            max_iterations=self.max_iterations,
            random_state=self.random_state,
        )


@dataclass
class GridSearchExperimentResult:
    """Figure 9 result: the full score grid and the coarse-vs-fine comparison."""

    search: GridSearchResult
    k_values: List[int] = field(default_factory=list)
    lambda_values: List[float] = field(default_factory=list)
    grid: Optional[np.ndarray] = None
    best_fine: Dict[str, Any] = field(default_factory=dict)
    best_coarse: Dict[str, Any] = field(default_factory=dict)

    @property
    def fine_beats_coarse(self) -> bool:
        """Whether the fine-grid optimum exceeds the coarse-region optimum."""
        return self.best_fine.get("score", 0.0) > self.best_coarse.get("score", 0.0)

    def to_text(self) -> str:
        """Render the recall heat-map and the coarse/fine comparison."""
        lines = ["Figure 9 — (K, lambda) grid search, recall@M heat-map"]
        header = ["K \\ lambda"] + [f"{value:g}" for value in self.lambda_values]
        rows = []
        for i, k in enumerate(self.k_values):
            rows.append([k] + [self.grid[i, j] for j in range(len(self.lambda_values))])
        lines.append(format_table(header, rows))
        lines.append(
            f"best (fine grid): K={self.best_fine.get('n_coclusters')} "
            f"lambda={self.best_fine.get('regularization')} "
            f"score={self.best_fine.get('score', float('nan')):.4f}"
        )
        lines.append(
            f"best (coarse region): K={self.best_coarse.get('n_coclusters')} "
            f"lambda={self.best_coarse.get('regularization')} "
            f"score={self.best_coarse.get('score', float('nan')):.4f}"
        )
        lines.append(f"fine grid beats coarse region: {self.fine_beats_coarse}")
        return "\n".join(lines)


def run_grid_search_experiment(
    k_values: Sequence[int] = (5, 10, 20, 40, 60),
    lambda_values: Sequence[float] = (0.0, 1.0, 5.0, 20.0, 60.0),
    m: int = 20,
    n_clients: int = 250,
    n_products: int = 40,
    max_iterations: int = 40,
    executor=None,
    random_state: RandomStateLike = 0,
) -> GridSearchExperimentResult:
    """Run the fine (K, lambda) grid search on the synthetic B2B corpus.

    Parameters
    ----------
    k_values, lambda_values:
        The grid axes (the paper sweeps 25 x 25 values; the default here is
        5 x 5 to stay laptop-friendly — pass larger sequences to widen it).
    m:
        Metric cut-off.
    n_clients, n_products:
        Size of the generated B2B corpus.
    max_iterations:
        OCuLaR iteration budget per combination.
    executor:
        Optional executor for parallel evaluation: a name from the
        :mod:`repro.parallel.scheduler` registry (``"process"`` stands in
        for the paper's Spark cluster) or a prebuilt instance.
    random_state:
        Master seed.
    """
    dataset = make_b2b(
        n_clients=n_clients, n_products=n_products, random_state=random_state
    )

    builder = OcularBuilder(max_iterations=max_iterations, random_state=random_state)

    search = grid_search(
        builder,
        {"n_coclusters": list(k_values), "regularization": list(lambda_values)},
        dataset.matrix,
        metric="recall",
        m=m,
        n_folds=1,
        executor=executor,
        random_state=random_state,
    )

    row_values, col_values, grid = search.scores_as_grid("n_coclusters", "regularization")
    best_fine = dict(search.best_params)
    best_fine["score"] = search.best_score

    coarse_entries = [
        entry
        for entry in search.table
        if COARSE_RANGE["n_coclusters"][0] <= entry["n_coclusters"] <= COARSE_RANGE["n_coclusters"][1]
        and COARSE_RANGE["regularization"][0]
        <= entry["regularization"]
        <= COARSE_RANGE["regularization"][1]
    ]
    if coarse_entries:
        best_coarse = dict(max(coarse_entries, key=lambda entry: entry["score"]))
    else:
        best_coarse = {"score": float("-inf")}

    return GridSearchExperimentResult(
        search=search,
        k_values=[int(value) for value in row_values],
        lambda_values=[float(value) for value in col_values],
        grid=grid,
        best_fine=best_fine,
        best_coarse=best_coarse,
    )
