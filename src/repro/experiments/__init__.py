"""Experiment harness: one module per paper table/figure, plus shared helpers.

Each experiment module exposes a ``run_*`` function returning a plain result
object and a ``format_*`` function rendering it next to the paper's reported
numbers.  The ``benchmarks/`` directory wraps these functions in
pytest-benchmark entries; the modules themselves stay importable from
examples and tests.
"""

from repro.experiments.zoo import build_model_zoo, MODEL_NAMES
from repro.experiments.paper_reference import (
    TABLE1_PAPER,
    FIGURE5_PAPER_SHAPE,
    PAPER_CLAIMS,
)
from repro.experiments.toy import run_toy_example, run_community_comparison
from repro.experiments.accuracy import (
    run_precision_study,
    run_recall_curves,
    run_table1,
)
from repro.experiments.parameters import run_parameter_study
from repro.experiments.scalability import (
    run_scalability_study,
    run_worker_scaling_study,
)
from repro.experiments.backends import run_backend_comparison
from repro.experiments.gridsearch import run_grid_search_experiment
from repro.experiments.deployment import run_deployment_example
from repro.experiments.incremental import (
    make_drifting_corpus,
    run_incremental_study,
)
from repro.experiments.hotpath import run_serving_hotpath
from repro.experiments.training_hotpath import run_training_hotpath

__all__ = [
    "build_model_zoo",
    "MODEL_NAMES",
    "TABLE1_PAPER",
    "FIGURE5_PAPER_SHAPE",
    "PAPER_CLAIMS",
    "run_toy_example",
    "run_community_comparison",
    "run_table1",
    "run_recall_curves",
    "run_precision_study",
    "run_parameter_study",
    "run_scalability_study",
    "run_worker_scaling_study",
    "run_backend_comparison",
    "run_grid_search_experiment",
    "run_deployment_example",
    "make_drifting_corpus",
    "run_incremental_study",
    "run_serving_hotpath",
    "run_training_hotpath",
]
