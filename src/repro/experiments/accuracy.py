"""Accuracy experiments: Table I and the Figure 5 recall/MAP curves.

``run_table1`` evaluates the six Table I algorithms on one of the paper's
(stand-in) datasets with the 75/25 repeated-hold-out protocol and returns a
comparison table.  ``run_recall_curves`` produces recall@M and MAP@M series
over a sweep of M for the same algorithms on the MovieLens-like corpus
(Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.datasets import dataset_by_name
from repro.data.splitting import train_test_split
from repro.evaluation.evaluator import evaluate_curves, evaluate_recommender
from repro.experiments.paper_reference import TABLE1_PAPER
from repro.experiments.zoo import MODEL_NAMES, build_model_zoo
from repro.utils.rng import RandomStateLike, spawn_seeds
from repro.utils.tables import format_table

#: Per-dataset hyper-parameters used when the caller does not supply its own
#: ``zoo_kwargs``.  The paper selects (K, lambda) per dataset by grid search;
#: these values come from the same kind of search run on the synthetic
#: stand-in corpora at benchmark scale (see benchmarks/bench_fig9_grid_search.py).
DATASET_ZOO_DEFAULTS: Dict[str, dict] = {
    "movielens": {"n_coclusters": 20, "regularization": 15.0},
    "citeulike": {"n_coclusters": 25, "regularization": 10.0},
    "netflix": {"n_coclusters": 30, "regularization": 15.0},
    "b2b": {"n_coclusters": 12, "regularization": 5.0},
}


@dataclass
class Table1Result:
    """Measured MAP@M and recall@M for every algorithm on one dataset.

    Attributes
    ----------
    dataset:
        Dataset key (``movielens``, ``citeulike`` or ``b2b``).
    m:
        Metric cut-off (50 in the paper).
    metrics:
        ``metrics[method]["recall"|"map"]`` — means over repetitions.
    stds:
        Matching standard deviations over repetitions.
    n_repeats:
        Number of random train/test instances averaged.
    """

    dataset: str
    m: int
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    stds: Dict[str, Dict[str, float]] = field(default_factory=dict)
    n_repeats: int = 0

    def ranking(self, metric: str = "recall") -> List[str]:
        """Method names sorted by decreasing measured ``metric``."""
        return sorted(self.metrics, key=lambda name: -self.metrics[name][metric])

    def to_text(self) -> str:
        """Render measured values next to the paper's Table I values."""
        paper = TABLE1_PAPER.get(self.dataset, {})
        rows = []
        for name in self.metrics:
            rows.append(
                [
                    name,
                    self.metrics[name]["map"],
                    paper.get("MAP@50", {}).get(name, float("nan")),
                    self.metrics[name]["recall"],
                    paper.get("recall@50", {}).get(name, float("nan")),
                ]
            )
        header = [
            "method",
            f"MAP@{self.m} (measured)",
            "MAP@50 (paper)",
            f"recall@{self.m} (measured)",
            "recall@50 (paper)",
        ]
        title = f"Table I — {self.dataset} (mean over {self.n_repeats} instances)"
        return title + "\n" + format_table(header, rows)


def run_table1(
    dataset: str = "movielens",
    m: int = 50,
    n_repeats: int = 2,
    scale: float = 0.5,
    max_users: Optional[int] = 150,
    methods: Optional[Sequence[str]] = None,
    random_state: RandomStateLike = 0,
    zoo_kwargs: Optional[dict] = None,
) -> Table1Result:
    """Run the Table I comparison on one dataset.

    Parameters
    ----------
    dataset:
        ``"movielens"``, ``"citeulike"`` or ``"b2b"``.
    m:
        Metric cut-off.
    n_repeats:
        Number of 75/25 instances (the paper uses 10; 2-3 keeps the benchmark
        affordable while still averaging out split noise).
    scale:
        Size multiplier applied to the synthetic corpus.
    max_users:
        Cap on evaluated test users per instance (None = all).
    methods:
        Subset of :data:`~repro.experiments.zoo.MODEL_NAMES` to run.
    random_state:
        Master seed.
    zoo_kwargs:
        Extra keyword arguments forwarded to
        :func:`~repro.experiments.zoo.build_model_zoo`.
    """
    matrix, _spec = dataset_by_name(dataset, random_state=random_state, scale=scale)
    if zoo_kwargs is None:
        zoo_kwargs = DATASET_ZOO_DEFAULTS.get(dataset, {})
    zoo = build_model_zoo(random_state=random_state, **zoo_kwargs)
    selected = list(methods) if methods is not None else list(MODEL_NAMES)

    seeds = spawn_seeds(random_state, 2 * n_repeats)
    per_method: Dict[str, Dict[str, List[float]]] = {
        name: {"recall": [], "map": []} for name in selected
    }
    for repeat in range(n_repeats):
        split = train_test_split(matrix, test_fraction=0.25, random_state=seeds[2 * repeat])
        users = _subsample_users(split, max_users, seeds[2 * repeat + 1])
        for name in selected:
            model = zoo[name]()
            model.fit(split.train)
            evaluation = evaluate_recommender(model, split, m=m, users=users)
            per_method[name]["recall"].append(evaluation.recall)
            per_method[name]["map"].append(evaluation.map)

    result = Table1Result(dataset=dataset, m=m, n_repeats=n_repeats)
    for name in selected:
        result.metrics[name] = {
            "recall": float(np.mean(per_method[name]["recall"])),
            "map": float(np.mean(per_method[name]["map"])),
        }
        result.stds[name] = {
            "recall": float(np.std(per_method[name]["recall"])),
            "map": float(np.std(per_method[name]["map"])),
        }
    return result


def _subsample_users(split, max_users: Optional[int], seed: int) -> Optional[List[int]]:
    """Pick a reproducible subset of test users (None = use all)."""
    if max_users is None:
        return None
    users = sorted(split.test_items.keys())
    if len(users) <= max_users:
        return users
    rng = np.random.default_rng(seed)
    return sorted(int(user) for user in rng.choice(users, size=max_users, replace=False))


@dataclass
class RecallCurvesResult:
    """Recall@M and MAP@M series per method (Figure 5).

    ``curves[method]["recall"]`` is aligned with :attr:`m_values`.
    """

    m_values: List[int]
    curves: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render both panels of Figure 5 as tables."""
        header = ["M"] + list(self.curves.keys())
        recall_rows = []
        map_rows = []
        for index, m in enumerate(self.m_values):
            recall_rows.append([m] + [self.curves[name]["recall"][index] for name in self.curves])
            map_rows.append([m] + [self.curves[name]["map"][index] for name in self.curves])
        return (
            "Figure 5 (left): recall@M\n"
            + format_table(header, recall_rows)
            + "\n\nFigure 5 (right): MAP@M\n"
            + format_table(header, map_rows)
        )


def run_recall_curves(
    dataset: str = "movielens",
    m_values: Sequence[int] = (5, 10, 20, 50, 100),
    scale: float = 0.5,
    max_users: Optional[int] = 150,
    methods: Optional[Sequence[str]] = None,
    random_state: RandomStateLike = 0,
    zoo_kwargs: Optional[dict] = None,
) -> RecallCurvesResult:
    """Produce the Figure 5 recall@M / MAP@M curves for every method."""
    matrix, _spec = dataset_by_name(dataset, random_state=random_state, scale=scale)
    split = train_test_split(matrix, test_fraction=0.25, random_state=random_state)
    seeds = spawn_seeds(random_state, 1)
    users = _subsample_users(split, max_users, seeds[0])

    if zoo_kwargs is None:
        zoo_kwargs = DATASET_ZOO_DEFAULTS.get(dataset, {})
    zoo = build_model_zoo(random_state=random_state, **zoo_kwargs)
    selected = list(methods) if methods is not None else list(MODEL_NAMES)

    result = RecallCurvesResult(m_values=[int(m) for m in sorted(set(m_values))])
    for name in selected:
        model = zoo[name]()
        model.fit(split.train)
        by_m = evaluate_curves(model, split, m_values=result.m_values, users=users)
        result.curves[name] = {
            "recall": [by_m[m].recall for m in result.m_values],
            "map": [by_m[m].map for m in result.m_values],
        }
    return result
