"""Accuracy experiments: Table I, the Figure 5 curves, and the precision study.

``run_table1`` evaluates the six Table I algorithms on one of the paper's
(stand-in) datasets with the 75/25 repeated-hold-out protocol and returns a
comparison table.  ``run_recall_curves`` produces recall@M and MAP@M series
over a sweep of M for the same algorithms on the MovieLens-like corpus
(Figure 5).  ``run_precision_study`` fits OCuLaR at ``float32`` and
``float64`` from identical initial factors and compares recall@M / MAP@M —
the ROADMAP's float32 question: does halving factor memory cost accuracy?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.ocular import OCuLaR
from repro.data.datasets import dataset_by_name
from repro.data.splitting import train_test_split
from repro.evaluation.evaluator import evaluate_curves, evaluate_recommender
from repro.experiments.paper_reference import TABLE1_PAPER
from repro.experiments.zoo import MODEL_NAMES, build_model_zoo
from repro.utils.rng import RandomStateLike, spawn_seeds
from repro.utils.tables import format_table

#: Per-dataset hyper-parameters used when the caller does not supply its own
#: ``zoo_kwargs``.  The paper selects (K, lambda) per dataset by grid search;
#: these values come from the same kind of search run on the synthetic
#: stand-in corpora at benchmark scale (see benchmarks/bench_fig9_grid_search.py).
DATASET_ZOO_DEFAULTS: Dict[str, dict] = {
    "movielens": {"n_coclusters": 20, "regularization": 15.0},
    "citeulike": {"n_coclusters": 25, "regularization": 10.0},
    "netflix": {"n_coclusters": 30, "regularization": 15.0},
    "b2b": {"n_coclusters": 12, "regularization": 5.0},
}


@dataclass
class Table1Result:
    """Measured MAP@M and recall@M for every algorithm on one dataset.

    Attributes
    ----------
    dataset:
        Dataset key (``movielens``, ``citeulike`` or ``b2b``).
    m:
        Metric cut-off (50 in the paper).
    metrics:
        ``metrics[method]["recall"|"map"]`` — means over repetitions.
    stds:
        Matching standard deviations over repetitions.
    n_repeats:
        Number of random train/test instances averaged.
    """

    dataset: str
    m: int
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    stds: Dict[str, Dict[str, float]] = field(default_factory=dict)
    n_repeats: int = 0

    def ranking(self, metric: str = "recall") -> List[str]:
        """Method names sorted by decreasing measured ``metric``."""
        return sorted(self.metrics, key=lambda name: -self.metrics[name][metric])

    def to_text(self) -> str:
        """Render measured values next to the paper's Table I values."""
        paper = TABLE1_PAPER.get(self.dataset, {})
        rows = []
        for name in self.metrics:
            rows.append(
                [
                    name,
                    self.metrics[name]["map"],
                    paper.get("MAP@50", {}).get(name, float("nan")),
                    self.metrics[name]["recall"],
                    paper.get("recall@50", {}).get(name, float("nan")),
                ]
            )
        header = [
            "method",
            f"MAP@{self.m} (measured)",
            "MAP@50 (paper)",
            f"recall@{self.m} (measured)",
            "recall@50 (paper)",
        ]
        title = f"Table I — {self.dataset} (mean over {self.n_repeats} instances)"
        return title + "\n" + format_table(header, rows)


def run_table1(
    dataset: str = "movielens",
    m: int = 50,
    n_repeats: int = 2,
    scale: float = 0.5,
    max_users: Optional[int] = 150,
    methods: Optional[Sequence[str]] = None,
    random_state: RandomStateLike = 0,
    zoo_kwargs: Optional[dict] = None,
) -> Table1Result:
    """Run the Table I comparison on one dataset.

    Parameters
    ----------
    dataset:
        ``"movielens"``, ``"citeulike"`` or ``"b2b"``.
    m:
        Metric cut-off.
    n_repeats:
        Number of 75/25 instances (the paper uses 10; 2-3 keeps the benchmark
        affordable while still averaging out split noise).
    scale:
        Size multiplier applied to the synthetic corpus.
    max_users:
        Cap on evaluated test users per instance (None = all).
    methods:
        Subset of :data:`~repro.experiments.zoo.MODEL_NAMES` to run.
    random_state:
        Master seed.
    zoo_kwargs:
        Extra keyword arguments forwarded to
        :func:`~repro.experiments.zoo.build_model_zoo`.
    """
    matrix, _spec = dataset_by_name(dataset, random_state=random_state, scale=scale)
    if zoo_kwargs is None:
        zoo_kwargs = DATASET_ZOO_DEFAULTS.get(dataset, {})
    zoo = build_model_zoo(random_state=random_state, **zoo_kwargs)
    selected = list(methods) if methods is not None else list(MODEL_NAMES)

    seeds = spawn_seeds(random_state, 2 * n_repeats)
    per_method: Dict[str, Dict[str, List[float]]] = {
        name: {"recall": [], "map": []} for name in selected
    }
    for repeat in range(n_repeats):
        split = train_test_split(matrix, test_fraction=0.25, random_state=seeds[2 * repeat])
        users = _subsample_users(split, max_users, seeds[2 * repeat + 1])
        for name in selected:
            model = zoo[name]()
            model.fit(split.train)
            evaluation = evaluate_recommender(model, split, m=m, users=users)
            per_method[name]["recall"].append(evaluation.recall)
            per_method[name]["map"].append(evaluation.map)

    result = Table1Result(dataset=dataset, m=m, n_repeats=n_repeats)
    for name in selected:
        result.metrics[name] = {
            "recall": float(np.mean(per_method[name]["recall"])),
            "map": float(np.mean(per_method[name]["map"])),
        }
        result.stds[name] = {
            "recall": float(np.std(per_method[name]["recall"])),
            "map": float(np.std(per_method[name]["map"])),
        }
    return result


def _subsample_users(split, max_users: Optional[int], seed: int) -> Optional[List[int]]:
    """Pick a reproducible subset of test users (None = use all)."""
    if max_users is None:
        return None
    users = sorted(split.test_items.keys())
    if len(users) <= max_users:
        return users
    rng = np.random.default_rng(seed)
    return sorted(int(user) for user in rng.choice(users, size=max_users, replace=False))


@dataclass
class RecallCurvesResult:
    """Recall@M and MAP@M series per method (Figure 5).

    ``curves[method]["recall"]`` is aligned with :attr:`m_values`.
    """

    m_values: List[int]
    curves: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render both panels of Figure 5 as tables."""
        header = ["M"] + list(self.curves.keys())
        recall_rows = []
        map_rows = []
        for index, m in enumerate(self.m_values):
            recall_rows.append([m] + [self.curves[name]["recall"][index] for name in self.curves])
            map_rows.append([m] + [self.curves[name]["map"][index] for name in self.curves])
        return (
            "Figure 5 (left): recall@M\n"
            + format_table(header, recall_rows)
            + "\n\nFigure 5 (right): MAP@M\n"
            + format_table(header, map_rows)
        )


@dataclass
class PrecisionStudyResult:
    """float32 vs float64 training precision on one dataset.

    Attributes
    ----------
    dataset, m:
        Dataset key and metric cut-off.
    metrics:
        ``metrics[dtype]["recall"|"map"]`` for ``dtype`` in
        ``("float32", "float64")``.
    factor_bytes:
        ``factor_bytes[dtype]`` — total bytes of the fitted factor matrices,
        the quantity float32 halves.
    n_iterations:
        Outer iterations each fit ran (same budget for both precisions).
    """

    dataset: str
    m: int
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    factor_bytes: Dict[str, int] = field(default_factory=dict)
    n_iterations: int = 0

    def recall_gap(self) -> float:
        """``recall@M(float64) - recall@M(float32)`` (positive = float64 better)."""
        return self.metrics["float64"]["recall"] - self.metrics["float32"]["recall"]

    def map_gap(self) -> float:
        """``MAP@M(float64) - MAP@M(float32)``."""
        return self.metrics["float64"]["map"] - self.metrics["float32"]["map"]

    def memory_ratio(self) -> float:
        """Factor memory of float32 relative to float64 (0.5 by construction)."""
        return self.factor_bytes["float32"] / self.factor_bytes["float64"]

    def to_text(self) -> str:
        """Render the precision comparison."""
        rows = [
            [
                dtype,
                self.metrics[dtype]["recall"],
                self.metrics[dtype]["map"],
                f"{self.factor_bytes[dtype]:,}",
            ]
            for dtype in ("float64", "float32")
        ]
        header = ["dtype", f"recall@{self.m}", f"MAP@{self.m}", "factor bytes"]
        title = (
            f"float32 precision study — {self.dataset} "
            f"({self.n_iterations} iterations)"
        )
        verdict = (
            f"recall gap (float64 - float32): {self.recall_gap():+.4f}, "
            f"MAP gap: {self.map_gap():+.4f}, "
            f"factor memory ratio: {self.memory_ratio():.2f}"
        )
        return title + "\n" + format_table(header, rows) + "\n" + verdict


def run_precision_study(
    dataset: str = "movielens",
    m: int = 50,
    scale: float = 0.5,
    max_users: Optional[int] = 150,
    n_coclusters: Optional[int] = None,
    regularization: Optional[float] = None,
    max_iterations: int = 60,
    tolerance: float = 1e-5,
    random_state: RandomStateLike = 0,
) -> PrecisionStudyResult:
    """Fit OCuLaR at float32 and float64 and compare recall@M / MAP@M.

    Both fits share the dataset, the split, the evaluated users, the
    hyper-parameters and the random seed (so the float32 run starts from the
    float32 cast of the same initial factors).  At converged tolerances the
    expected recall@M gap is zero up to split noise — single precision only
    perturbs iterates well below the scale ranking cares about — while the
    factor memory is exactly halved.
    """
    matrix, _spec = dataset_by_name(dataset, random_state=random_state, scale=scale)
    split = train_test_split(matrix, test_fraction=0.25, random_state=random_state)
    seeds = spawn_seeds(random_state, 1)
    users = _subsample_users(split, max_users, seeds[0])
    defaults = DATASET_ZOO_DEFAULTS.get(dataset, {})
    if n_coclusters is None:
        n_coclusters = defaults.get("n_coclusters", 20)
    if regularization is None:
        regularization = defaults.get("regularization", 10.0)

    result = PrecisionStudyResult(dataset=dataset, m=m)
    for dtype in ("float64", "float32"):
        model = OCuLaR(
            n_coclusters=n_coclusters,
            regularization=regularization,
            max_iterations=max_iterations,
            tolerance=tolerance,
            dtype=dtype,
            random_state=random_state,
        )
        model.fit(split.train)
        evaluation = evaluate_recommender(model, split, m=m, users=users)
        result.metrics[dtype] = {
            "recall": float(evaluation.recall),
            "map": float(evaluation.map),
        }
        result.factor_bytes[dtype] = int(
            model.factors_.user_factors.nbytes + model.factors_.item_factors.nbytes
        )
        result.n_iterations = max(result.n_iterations, model.history_.n_iterations)
    return result


def run_recall_curves(
    dataset: str = "movielens",
    m_values: Sequence[int] = (5, 10, 20, 50, 100),
    scale: float = 0.5,
    max_users: Optional[int] = 150,
    methods: Optional[Sequence[str]] = None,
    random_state: RandomStateLike = 0,
    zoo_kwargs: Optional[dict] = None,
) -> RecallCurvesResult:
    """Produce the Figure 5 recall@M / MAP@M curves for every method."""
    matrix, _spec = dataset_by_name(dataset, random_state=random_state, scale=scale)
    split = train_test_split(matrix, test_fraction=0.25, random_state=random_state)
    seeds = spawn_seeds(random_state, 1)
    users = _subsample_users(split, max_users, seeds[0])

    if zoo_kwargs is None:
        zoo_kwargs = DATASET_ZOO_DEFAULTS.get(dataset, {})
    zoo = build_model_zoo(random_state=random_state, **zoo_kwargs)
    selected = list(methods) if methods is not None else list(MODEL_NAMES)

    result = RecallCurvesResult(m_values=[int(m) for m in sorted(set(m_values))])
    for name in selected:
        model = zoo[name]()
        model.fit(split.train)
        by_m = evaluate_curves(model, split, m_values=result.m_values, users=users)
        result.curves[name] = {
            "recall": [by_m[m].recall for m in result.m_values],
            "map": [by_m[m].map for m in result.m_values],
        }
    return result
