"""Serving-throughput experiment: chunked engine versus the per-user loop.

The deployment of Section VIII is a nightly batch over every client.  This
experiment quantifies the serving-path rewrite: fit OCuLaR on a B2B-scale
corpus, rank every user once through the per-user reference loop
(:meth:`~repro.base.Recommender.recommend` in a Python ``for``) and once
through the chunked :class:`~repro.serving.engine.TopNEngine`, verify the
rankings agree exactly, and report users/second for both paths plus the
fold-in cold-start rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.ocular import OCuLaR
from repro.data.interactions import InteractionMatrix
from repro.serving import TopNEngine, fold_in_users, serve_sharded
from repro.utils.rng import RandomStateLike, ensure_rng
from repro.utils.tables import format_table


@dataclass
class ServingThroughputResult:
    """Timings of the serving-path comparison.

    Attributes
    ----------
    n_users, n_items, n_coclusters, top_n:
        Shape of the benchmark corpus and the list length served.
    loop_seconds, batch_seconds:
        Median wall-clock seconds to serve all users through the per-user
        loop and through the chunked engine.
    sharded_seconds:
        Seconds for the engine fanned across a thread pool (informational;
        on a single-core host this tracks ``batch_seconds``).
    fold_in_seconds, n_fold_in:
        Seconds to fold ``n_fold_in`` cold-start users in (one batched
        solve) and serve their lists.
    rankings_match:
        Whether the loop and the engine produced identical rankings for
        every user (they must).
    """

    n_users: int
    n_items: int
    n_coclusters: int
    top_n: int
    loop_seconds: float
    batch_seconds: float
    sharded_seconds: float
    fold_in_seconds: float
    n_fold_in: int
    rankings_match: bool
    per_run_loop_seconds: List[float] = field(default_factory=list)
    per_run_batch_seconds: List[float] = field(default_factory=list)

    def speedup(self) -> float:
        """Throughput ratio of the chunked engine over the per-user loop."""
        if self.batch_seconds <= 0:
            return float("inf")
        return self.loop_seconds / self.batch_seconds

    def loop_users_per_second(self) -> float:
        """Users served per second by the per-user loop."""
        return self.n_users / self.loop_seconds if self.loop_seconds > 0 else float("inf")

    def batch_users_per_second(self) -> float:
        """Users served per second by the chunked engine."""
        return self.n_users / self.batch_seconds if self.batch_seconds > 0 else float("inf")

    def fold_in_users_per_second(self) -> float:
        """Cold-start users folded in and served per second."""
        if self.fold_in_seconds <= 0:
            return float("inf")
        return self.n_fold_in / self.fold_in_seconds

    def to_text(self) -> str:
        """Render the comparison as a small report table."""
        rows = [
            ["per-user loop", f"{self.loop_seconds:.3f}", f"{self.loop_users_per_second():,.0f}"],
            ["chunked engine", f"{self.batch_seconds:.3f}", f"{self.batch_users_per_second():,.0f}"],
            ["sharded (threads)", f"{self.sharded_seconds:.3f}", "-"],
            [
                f"fold-in ({self.n_fold_in} cold users)",
                f"{self.fold_in_seconds:.3f}",
                f"{self.fold_in_users_per_second():,.0f}",
            ],
        ]
        header = (
            f"Serving throughput — {self.n_users:,} users x {self.n_items} items, "
            f"K={self.n_coclusters}, top-{self.top_n}"
        )
        table = format_table(["path", "seconds", "users/s"], rows)
        verdict = (
            f"speedup: {self.speedup():.1f}x, rankings identical: {self.rankings_match}"
        )
        return "\n".join([header, table, verdict])


def _make_corpus(
    n_users: int, n_items: int, n_coclusters: int, random_state: RandomStateLike
) -> InteractionMatrix:
    """A block-structured one-class corpus with B2B-like degree spread."""
    rng = ensure_rng(random_state)
    user_groups = rng.integers(0, n_coclusters, size=n_users)
    item_groups = rng.integers(0, n_coclusters, size=n_items)
    base_rate = np.where(
        user_groups[:, np.newaxis] == item_groups[np.newaxis, :], 0.35, 0.015
    )
    dense = rng.random((n_users, n_items)) < base_rate
    # Guarantee every user at least one positive so fold-in rows are non-trivial.
    empty = ~dense.any(axis=1)
    dense[empty, rng.integers(0, n_items, size=int(empty.sum()))] = True
    return InteractionMatrix(dense.astype(float))


def run_serving_throughput(
    n_users: int = 10_000,
    n_items: int = 64,
    n_coclusters: int = 48,
    top_n: int = 10,
    n_repeats: int = 3,
    fit_iterations: int = 5,
    chunk_size: int = 8192,
    n_fold_in: int = 500,
    random_state: RandomStateLike = 0,
) -> ServingThroughputResult:
    """Fit once, then time the per-user loop against the chunked engine.

    Both paths are timed ``n_repeats`` times (median reported) after a
    warm-up pass, and the engine's rankings are checked for exact equality
    with the loop's on every user.
    """
    matrix = _make_corpus(n_users, n_items, n_coclusters, random_state)
    model = OCuLaR(
        n_coclusters=n_coclusters,
        regularization=4.0,
        max_iterations=fit_iterations,
        random_state=random_state,
    ).fit(matrix)
    engine = TopNEngine.from_model(model, chunk_size=chunk_size)
    users = list(range(n_users))

    # Warm-up (BLAS thread spin-up, lazy caches) outside the timed region.
    warm = users[: min(256, n_users)]
    for user in warm:
        model.recommend(user, n_items=top_n)
    engine.recommend_batch(warm, n_items=top_n)

    loop_rankings: List[np.ndarray] = []
    loop_times: List[float] = []
    for _ in range(n_repeats):
        start = time.perf_counter()
        loop_rankings = [model.recommend(user, n_items=top_n, exclude_seen=True) for user in users]
        loop_times.append(time.perf_counter() - start)

    batch_rankings: List[np.ndarray] = []
    batch_times: List[float] = []
    for _ in range(n_repeats):
        start = time.perf_counter()
        batch_rankings = engine.recommend_batch(users, n_items=top_n, exclude_seen=True)
        batch_times.append(time.perf_counter() - start)

    rankings_match = all(
        np.array_equal(reference, candidate)
        for reference, candidate in zip(loop_rankings, batch_rankings)
    )

    start = time.perf_counter()
    serve_sharded(engine, users, n_items=top_n, executor="thread", shard_size=chunk_size)
    sharded_seconds = time.perf_counter() - start

    # Cold-start: fold a batch of unseen interaction vectors in and serve them.
    fold_count = min(n_fold_in, n_users)
    cold_interactions = [matrix.items_of_user(user) for user in range(fold_count)]
    start = time.perf_counter()
    folded = fold_in_users(model, cold_interactions, n_sweeps=15)
    affinities = folded @ model.item_factors_.T
    engine.rank_scored(1.0 - np.exp(-affinities), n_items=top_n)
    fold_in_seconds = time.perf_counter() - start

    return ServingThroughputResult(
        n_users=n_users,
        n_items=n_items,
        n_coclusters=n_coclusters,
        top_n=top_n,
        loop_seconds=float(np.median(loop_times)),
        batch_seconds=float(np.median(batch_times)),
        sharded_seconds=sharded_seconds,
        fold_in_seconds=fold_in_seconds,
        n_fold_in=fold_count,
        rankings_match=rankings_match,
        per_run_loop_seconds=loop_times,
        per_run_batch_seconds=batch_times,
    )
