"""Hyper-parameter study: Figure 6 (recall and co-cluster metrics vs K, lambda).

For every (K, lambda) combination the experiment fits OCuLaR on a training
split, measures recall@M on the held-out positives and computes the
co-cluster statistics the paper plots: users per co-cluster, items per
co-cluster and co-cluster density.  The paper's observations to reproduce:

* lambda = 0 (no regularisation) and lambda very large both hurt recall;
* larger K gives smaller, denser co-clusters;
* a mid-range (K, lambda) region maximises recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.coclusters import cocluster_statistics, extract_coclusters
from repro.core.ocular import OCuLaR
from repro.data.datasets import dataset_by_name
from repro.data.splitting import train_test_split
from repro.evaluation.evaluator import evaluate_recommender
from repro.utils.rng import RandomStateLike, spawn_seeds
from repro.utils.tables import format_table


@dataclass
class ParameterStudyPoint:
    """Metrics for one (K, lambda) combination."""

    n_coclusters: int
    regularization: float
    recall: float
    map: float
    mean_users_per_cocluster: float
    mean_items_per_cocluster: float
    mean_density: float
    mean_user_memberships: float


@dataclass
class ParameterStudyResult:
    """All (K, lambda) points of the Figure 6 sweep."""

    dataset: str
    m: int
    points: List[ParameterStudyPoint] = field(default_factory=list)

    def series_for_lambda(self, regularization: float) -> List[ParameterStudyPoint]:
        """Points with the given lambda, sorted by K (one Figure 6 line)."""
        selected = [
            point for point in self.points if point.regularization == regularization
        ]
        return sorted(selected, key=lambda point: point.n_coclusters)

    def best_point(self) -> ParameterStudyPoint:
        """The combination with the highest recall."""
        return max(self.points, key=lambda point: point.recall)

    def lambdas(self) -> List[float]:
        """Distinct regularisation values in the sweep."""
        return sorted({point.regularization for point in self.points})

    def to_text(self) -> str:
        """Render the four Figure 6 panels as one table."""
        header = [
            "K",
            "lambda",
            f"recall@{self.m}",
            "users/co-cluster",
            "items/co-cluster",
            "density",
            "memberships/user",
        ]
        rows = [
            [
                point.n_coclusters,
                point.regularization,
                point.recall,
                point.mean_users_per_cocluster,
                point.mean_items_per_cocluster,
                point.mean_density,
                point.mean_user_memberships,
            ]
            for point in sorted(self.points, key=lambda p: (p.regularization, p.n_coclusters))
        ]
        return f"Figure 6 — parameter study ({self.dataset})\n" + format_table(header, rows)


def run_parameter_study(
    dataset: str = "movielens",
    k_values: Sequence[int] = (5, 10, 20, 40, 80),
    lambda_values: Sequence[float] = (0.0, 5.0, 30.0, 100.0),
    m: int = 50,
    scale: float = 0.4,
    max_users: Optional[int] = 120,
    max_iterations: int = 60,
    random_state: RandomStateLike = 0,
) -> ParameterStudyResult:
    """Sweep (K, lambda) and record recall plus co-cluster statistics.

    Parameters mirror :func:`repro.experiments.accuracy.run_table1`;
    ``k_values`` and ``lambda_values`` define the sweep.
    """
    matrix, _spec = dataset_by_name(dataset, random_state=random_state, scale=scale)
    split = train_test_split(matrix, test_fraction=0.25, random_state=random_state)
    seeds = spawn_seeds(random_state, 1)
    users = None
    if max_users is not None:
        all_users = sorted(split.test_items.keys())
        if len(all_users) > max_users:
            import numpy as np

            rng = np.random.default_rng(seeds[0])
            users = sorted(int(u) for u in rng.choice(all_users, size=max_users, replace=False))
        else:
            users = all_users

    result = ParameterStudyResult(dataset=dataset, m=m)
    for regularization in lambda_values:
        for n_coclusters in k_values:
            model = OCuLaR(
                n_coclusters=int(n_coclusters),
                regularization=float(regularization),
                max_iterations=max_iterations,
                random_state=random_state,
            ).fit(split.train)
            evaluation = evaluate_recommender(model, split, m=m, users=users)
            coclusters = extract_coclusters(model.factors_, split.train)
            stats = cocluster_statistics(
                coclusters, n_users=matrix.n_users, n_items=matrix.n_items
            )
            result.points.append(
                ParameterStudyPoint(
                    n_coclusters=int(n_coclusters),
                    regularization=float(regularization),
                    recall=evaluation.recall,
                    map=evaluation.map,
                    mean_users_per_cocluster=stats.mean_users,
                    mean_items_per_cocluster=stats.mean_items,
                    mean_density=stats.mean_density,
                    mean_user_memberships=stats.mean_user_memberships,
                )
            )
    return result
