"""Backend comparison: Figure 8 (likelihood-vs-time, CPU vs GPU stand-ins).

The paper plots the distance to the optimal training likelihood against
wall-clock time for its CPU (C++) and GPU (CUDA) implementations on Netflix
with K = 200 and reports a 57x speed-up.  The reproduction runs the same
mathematics through the ``reference`` (per-row Python loop), ``vectorized``
(batched NumPy) and ``parallel`` (thread-sharded vectorized) backends on the
Netflix-like corpus, records the trajectories, and reports

* the speed-up in seconds-per-iteration, and
* the speed-up in time-to-reach a common likelihood target,

which is the quantity the paper's figure actually conveys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.data.interactions import InteractionMatrix
from repro.utils.rng import RandomStateLike
from repro.utils.tables import format_table


@dataclass
class BackendTrajectory:
    """Likelihood-versus-time trajectory of one backend."""

    backend: str
    elapsed_seconds: List[float] = field(default_factory=list)
    log_likelihoods: List[float] = field(default_factory=list)
    seconds_per_iteration: float = 0.0

    def time_to_reach(self, target: float) -> Optional[float]:
        """First elapsed time at which the negative log-likelihood <= target."""
        for elapsed, value in zip(self.elapsed_seconds, self.log_likelihoods):
            if value <= target:
                return elapsed
        return None


@dataclass
class BackendComparisonResult:
    """Figure 8 result: one trajectory per backend plus derived speed-ups."""

    trajectories: Dict[str, BackendTrajectory] = field(default_factory=dict)
    n_positives: int = 0
    n_coclusters: int = 0

    def speedup_per_iteration(
        self, fast: str = "vectorized", slow: str = "reference"
    ) -> float:
        """Ratio of per-iteration times (paper: 57x for GPU over CPU)."""
        fast_time = self.trajectories[fast].seconds_per_iteration
        slow_time = self.trajectories[slow].seconds_per_iteration
        if fast_time <= 0:
            return float("inf")
        return slow_time / fast_time

    def speedup_to_target(
        self, fast: str = "vectorized", slow: str = "reference", quantile: float = 0.9
    ) -> Optional[float]:
        """Speed-up in wall-clock time to reach a common likelihood target.

        The target is the ``quantile``-way point between the worst and best
        likelihood observed by the *slow* backend, so both backends can
        actually reach it.
        """
        slow_traj = self.trajectories[slow]
        fast_traj = self.trajectories[fast]
        worst = max(slow_traj.log_likelihoods)
        best = min(slow_traj.log_likelihoods)
        target = worst - quantile * (worst - best)
        slow_time = slow_traj.time_to_reach(target)
        fast_time = fast_traj.time_to_reach(target)
        if slow_time is None or fast_time is None or fast_time <= 0:
            return None
        return slow_time / fast_time

    def to_text(self) -> str:
        """Render both trajectories and the speed-up figures."""
        lines = ["Figure 8 — likelihood vs wall-clock time"]
        for name, trajectory in self.trajectories.items():
            rows = list(zip(trajectory.elapsed_seconds, trajectory.log_likelihoods))
            lines.append(f"[{name}] (sec/iter = {trajectory.seconds_per_iteration:.4f})")
            lines.append(format_table(["elapsed (s)", "-log L"], rows, precision=4))
        lines.append(f"speed-up per iteration: {self.speedup_per_iteration():.1f}x (paper: 57x)")
        to_target = self.speedup_to_target()
        if to_target is not None:
            lines.append(f"speed-up to common likelihood target: {to_target:.1f}x")
        if "parallel" in self.trajectories and "vectorized" in self.trajectories:
            parallel_ratio = self.speedup_per_iteration(fast="parallel", slow="vectorized")
            lines.append(
                f"parallel over vectorized per iteration: {parallel_ratio:.2f}x"
            )
        return "\n".join(lines)


#: Backends the Figure 8 comparison runs by default.
DEFAULT_BACKENDS = ("reference", "vectorized", "parallel")


def run_backend_comparison(
    n_users: int = 800,
    n_items: int = 300,
    n_coclusters: int = 50,
    n_iterations: int = 5,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    n_workers: Optional[int] = None,
    matrix: Optional[InteractionMatrix] = None,
    random_state: RandomStateLike = 0,
) -> BackendComparisonResult:
    """Train the same model with each backend and record likelihood vs time.

    All backends start from the same initial factors (same seed), so the
    trajectories differ only in wall-clock cost — exactly the paper's set-up,
    where CPU and GPU run the same algorithm.  ``n_workers`` sizes the thread
    pool of the ``parallel`` backend (ignored by the others).
    """
    if matrix is None:
        matrix, _spec = make_netflix_like(
            n_users=n_users, n_items=n_items, random_state=random_state
        )
    result = BackendComparisonResult(n_positives=matrix.nnz, n_coclusters=n_coclusters)
    import warnings

    for backend in backends:
        model = OCuLaR(
            n_coclusters=n_coclusters,
            regularization=5.0,
            max_iterations=n_iterations,
            tolerance=0.0,
            backend=backend,
            n_workers=n_workers if backend == "parallel" else None,
            random_state=random_state,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model.fit(matrix)
        history = model.history_
        assert history is not None
        result.trajectories[backend] = BackendTrajectory(
            backend=backend,
            elapsed_seconds=list(history.elapsed_seconds),
            log_likelihoods=list(history.log_likelihoods[1:]),
            seconds_per_iteration=history.mean_seconds_per_iteration,
        )
    return result
