"""Scalability study: Figure 7 (linear scaling in nnz and K) plus the
worker-scaling axis of the Figure 8 parallelism story.

The paper subsamples increasing fractions of the Netflix dataset and shows
that the per-iteration training time grows linearly in the number of positive
examples and in K.  The reproduction runs the same protocol on the
Netflix-like synthetic corpus, measures seconds per outer iteration for each
(fraction, K) pair, and fits a least-squares line through each K series so
the benchmark can report how close to linear the scaling is (R^2 of the
linear fit).

The paper's second scalability claim — row subproblems are independent, so
sweeps parallelise across cores with near-linear scaling (Sections IV/VI,
Figure 8) — is measured by :func:`run_worker_scaling_study`: the same fit
repeated with the sharded ``parallel`` backend at increasing worker counts,
reported as speed-up over the single-threaded ``vectorized`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.data.interactions import InteractionMatrix
from repro.utils.rng import RandomStateLike
from repro.utils.tables import format_table


@dataclass
class ScalabilityPoint:
    """Per-iteration timing for one (fraction, K) combination."""

    fraction: float
    n_positives: int
    n_coclusters: int
    seconds_per_iteration: float


@dataclass
class ScalabilityResult:
    """All timing points of the Figure 7 sweep plus linearity diagnostics."""

    points: List[ScalabilityPoint] = field(default_factory=list)

    def series_for_k(self, n_coclusters: int) -> List[ScalabilityPoint]:
        """Points with the given K, sorted by dataset fraction."""
        series = [point for point in self.points if point.n_coclusters == n_coclusters]
        return sorted(series, key=lambda point: point.fraction)

    def k_values(self) -> List[int]:
        """Distinct K values in the sweep."""
        return sorted({point.n_coclusters for point in self.points})

    def linearity_r2(self, n_coclusters: int) -> float:
        """R^2 of a linear fit of seconds-per-iteration vs number of positives.

        Values close to 1 support the paper's linear-scaling claim.
        """
        series = self.series_for_k(n_coclusters)
        if len(series) < 3:
            return float("nan")
        x = np.array([point.n_positives for point in series], dtype=float)
        y = np.array([point.seconds_per_iteration for point in series], dtype=float)
        slope, intercept = np.polyfit(x, y, deg=1)
        predicted = slope * x + intercept
        residual = float(np.sum((y - predicted) ** 2))
        total = float(np.sum((y - y.mean()) ** 2))
        if total == 0:
            return 1.0
        return 1.0 - residual / total

    def to_text(self) -> str:
        """Render the Figure 7 series plus the per-K linear-fit quality."""
        header = ["fraction", "positives", "K", "sec/iteration"]
        rows = [
            [point.fraction, point.n_positives, point.n_coclusters, point.seconds_per_iteration]
            for point in sorted(self.points, key=lambda p: (p.n_coclusters, p.fraction))
        ]
        lines = ["Figure 7 — per-iteration training time", format_table(header, rows, precision=5)]
        for k in self.k_values():
            lines.append(f"linear fit R^2 (K={k}): {self.linearity_r2(k):.4f}")
        return "\n".join(lines)


def run_scalability_study(
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    k_values: Sequence[int] = (10, 50, 100),
    n_iterations: int = 3,
    n_users: int = 1500,
    n_items: int = 500,
    backend: str = "vectorized",
    n_workers: Optional[int] = None,
    executor: Optional[str] = None,
    random_state: RandomStateLike = 0,
) -> ScalabilityResult:
    """Measure seconds per training iteration across dataset fractions and K.

    Parameters
    ----------
    fractions:
        Fractions of the positive examples kept (uniformly subsampled), the
        x-axis of Figure 7.
    k_values:
        Numbers of co-clusters, one line per value in Figure 7.
    n_iterations:
        Outer iterations timed per configuration (the mean is reported).
    n_users, n_items:
        Size of the Netflix-like corpus generated for the study.
    backend:
        Which backend to time.
    n_workers:
        Worker-pool size when timing the ``parallel`` backend.
    executor:
        Shard executor name (``"thread"`` / ``"process"`` / ``"serial"``)
        when timing the ``parallel`` backend.
    random_state:
        Seed for corpus generation and subsampling.
    """
    matrix, _spec = make_netflix_like(
        n_users=n_users, n_items=n_items, random_state=random_state
    )
    result = ScalabilityResult()
    for n_coclusters in k_values:
        for fraction in fractions:
            subsampled = matrix.subsample(float(fraction), random_state=random_state)
            seconds = measure_seconds_per_iteration(
                subsampled,
                n_coclusters=int(n_coclusters),
                n_iterations=n_iterations,
                backend=backend,
                n_workers=n_workers,
                executor=executor,
                random_state=random_state,
            )
            result.points.append(
                ScalabilityPoint(
                    fraction=float(fraction),
                    n_positives=subsampled.nnz,
                    n_coclusters=int(n_coclusters),
                    seconds_per_iteration=seconds,
                )
            )
    return result


def measure_seconds_per_iteration(
    matrix: InteractionMatrix,
    n_coclusters: int,
    n_iterations: int = 3,
    backend: str = "vectorized",
    n_workers: Optional[int] = None,
    executor: Optional[str] = None,
    random_state: RandomStateLike = 0,
) -> float:
    """Mean wall-clock seconds per outer iteration on ``matrix``.

    Runs exactly ``n_iterations`` iterations (no convergence stopping) and
    averages the recorded per-iteration times.
    """
    model = OCuLaR(
        n_coclusters=n_coclusters,
        regularization=5.0,
        max_iterations=n_iterations,
        tolerance=0.0,
        backend=backend,
        n_workers=n_workers,
        executor=executor,
        random_state=random_state,
    )
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(matrix)
    assert model.history_ is not None
    return model.history_.mean_seconds_per_iteration


@dataclass
class WorkerScalingPoint:
    """Per-iteration timing for one (executor, worker count) configuration."""

    n_workers: int
    seconds_per_iteration: float
    executor: str = "thread"


@dataclass
class WorkerScalingResult:
    """Speed-up versus parallelism: the CPU rendition of Figure 8.

    ``baseline_seconds`` is the single-threaded ``vectorized`` backend; each
    point is the ``parallel`` backend at one worker count on one executor
    (thread sharding, shared-memory process sharding, ...).  Because the
    parallel backend is bit-identical to the baseline on every executor, the
    comparison is pure wall-clock — the trajectories are the same by
    construction.
    """

    baseline_seconds: float = 0.0
    points: List[WorkerScalingPoint] = field(default_factory=list)
    n_positives: int = 0
    n_coclusters: int = 0

    def worker_counts(self) -> List[int]:
        """Distinct worker counts measured, ascending."""
        return sorted({point.n_workers for point in self.points})

    def executors(self) -> List[str]:
        """Distinct executors measured, sorted."""
        return sorted({point.executor for point in self.points})

    def seconds_at(self, n_workers: int, executor: str = "thread") -> float:
        """Seconds per iteration at ``n_workers`` on ``executor``."""
        for point in self.points:
            if point.n_workers == n_workers and point.executor == executor:
                return point.seconds_per_iteration
        raise KeyError(f"no measurement for n_workers={n_workers}, executor={executor!r}")

    def speedup_at(self, n_workers: int, executor: str = "thread") -> float:
        """Speed-up of ``n_workers`` workers over the vectorized baseline."""
        seconds = self.seconds_at(n_workers, executor)
        if seconds <= 0:
            return float("inf")
        return self.baseline_seconds / seconds

    def to_text(self) -> str:
        """Render the worker-scaling table with per-configuration speed-ups."""
        header = ["executor", "workers", "sec/iteration", "speedup vs vectorized"]
        rows = [
            [
                point.executor,
                point.n_workers,
                point.seconds_per_iteration,
                self.speedup_at(point.n_workers, point.executor),
            ]
            for point in sorted(self.points, key=lambda p: (p.executor, p.n_workers))
        ]
        lines = [
            "Figure 8 (CPU) — per-iteration time vs worker count "
            f"({self.n_positives} positives, K={self.n_coclusters})",
            f"vectorized baseline: {self.baseline_seconds:.5f} sec/iteration",
            format_table(header, rows, precision=5),
        ]
        return "\n".join(lines)


def run_worker_scaling_study(
    worker_counts: Sequence[int] = (1, 2, 4),
    n_coclusters: int = 50,
    n_iterations: int = 3,
    n_users: int = 1500,
    n_items: int = 500,
    executors: Sequence[str] = ("thread",),
    random_state: RandomStateLike = 0,
) -> WorkerScalingResult:
    """Measure parallel-backend speed-up over vectorized per executor and worker count.

    Every configuration times the same fit on the same corpus from the same
    seed; only the sweep execution differs, so the measured ratios isolate
    the sharding overhead and the worker-scaling of the row subproblems —
    the paper's near-linear-scaling claim, on CPU cores instead of CUDA
    threads.  ``executors`` selects the sharding substrates to compare
    (``"thread"`` and ``"process"`` cover both sides of the GIL question).
    """
    matrix, _spec = make_netflix_like(
        n_users=n_users, n_items=n_items, random_state=random_state
    )
    baseline = measure_seconds_per_iteration(
        matrix,
        n_coclusters=int(n_coclusters),
        n_iterations=n_iterations,
        backend="vectorized",
        random_state=random_state,
    )
    result = WorkerScalingResult(
        baseline_seconds=baseline,
        n_positives=matrix.nnz,
        n_coclusters=int(n_coclusters),
    )
    for executor in executors:
        for n_workers in worker_counts:
            seconds = measure_seconds_per_iteration(
                matrix,
                n_coclusters=int(n_coclusters),
                n_iterations=n_iterations,
                backend="parallel",
                n_workers=int(n_workers),
                executor=str(executor),
                random_state=random_state,
            )
            result.points.append(
                WorkerScalingPoint(
                    n_workers=int(n_workers),
                    seconds_per_iteration=seconds,
                    executor=str(executor),
                )
            )
    return result
