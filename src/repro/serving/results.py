"""Flat top-N results: one contiguous block instead of a list of arrays.

The serving hot path used to return ``List[np.ndarray]`` — one small int64
array per user.  At nightly-batch scale that is ``O(n_users)`` Python
objects to build, refcount, pickle shard by shard and serialise row by row
through the gateway.  :class:`TopNResult` replaces the list with three flat
arrays:

* ``items`` — ``(n_rows, n)`` int32, each row's ranked item indices,
  padded with ``-1`` past the row's valid length;
* ``lengths`` — ``(n_rows,)`` int32, the valid prefix per row (shorter than
  ``n`` for heavily-seen users, exactly like the reference path's
  never-pad-with-seen-items rule);
* ``scores`` — optional ``(n_rows, n)`` float block of the ranked entries'
  model scores (padding entries are ``-inf``).

The container still *behaves* like the old list: ``len``, iteration,
``result[i]`` (a zero-copy view of row ``i``'s valid prefix) and equality
against a plain list of arrays all work, so row-wise consumers are
unchanged.  Slicing returns another :class:`TopNResult` view — this is what
makes the micro-batcher's scatter a single array slice instead of a Python
list copy — and cross-process transport pickles three contiguous buffers
instead of thousands of objects.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["TopNResult"]


class TopNResult(Sequence):
    """Contiguous per-row top-N rankings (see module docstring).

    Construct directly from the three blocks, or via :meth:`from_rows`
    (list-of-arrays compatibility) / :meth:`concat` (shard flattening).
    """

    __slots__ = ("items", "lengths", "scores")

    def __init__(
        self,
        items: np.ndarray,
        lengths: np.ndarray,
        scores: Optional[np.ndarray] = None,
    ) -> None:
        items = np.asarray(items)
        lengths = np.asarray(lengths)
        if items.ndim != 2:
            raise ValueError(f"items must be 2-D (n_rows, n), got shape {items.shape}")
        if lengths.shape != (items.shape[0],):
            raise ValueError(
                f"lengths must have shape ({items.shape[0]},), got {lengths.shape}"
            )
        if scores is not None:
            scores = np.asarray(scores)
            if scores.shape != items.shape:
                raise ValueError(
                    f"scores shape {scores.shape} does not match items {items.shape}"
                )
        self.items = items
        self.lengths = lengths
        self.scores = scores

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, width: int = 0, with_scores: bool = False) -> "TopNResult":
        """A zero-row result (the empty-input serving contract)."""
        return cls(
            np.empty((0, width), dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.empty((0, width), dtype=np.float64) if with_scores else None,
        )

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[np.ndarray],
        scores: Optional[Sequence[np.ndarray]] = None,
        width: Optional[int] = None,
    ) -> "TopNResult":
        """Pack variable-length per-row arrays into one flat result.

        The compatibility constructor for call sites still producing lists
        (wire decoding, mixed known/cold merges).  ``width`` defaults to the
        longest row; shorter rows are padded with ``-1`` (and ``-inf`` in
        the score block).
        """
        rows = [np.asarray(row).ravel() for row in rows]
        if width is None:
            width = max((row.size for row in rows), default=0)
        items = np.full((len(rows), width), -1, dtype=np.int32)
        lengths = np.empty(len(rows), dtype=np.int32)
        for i, row in enumerate(rows):
            items[i, : row.size] = row
            lengths[i] = row.size
        score_block = None
        if scores is not None:
            score_rows = [np.asarray(row, dtype=np.float64).ravel() for row in scores]
            if len(score_rows) != len(rows):
                raise ValueError(
                    f"{len(score_rows)} score rows for {len(rows)} ranking rows"
                )
            score_block = np.full((len(rows), width), -np.inf, dtype=np.float64)
            for i, row in enumerate(score_rows):
                score_block[i, : row.size] = row
        return cls(items, lengths, score_block)

    @classmethod
    def concat(cls, results: Sequence["TopNResult"]) -> "TopNResult":
        """Stack shard results into one flat result (order preserved).

        Shards of one serving call share a width, so the common case is a
        straight ``vstack`` of the blocks; mixed widths (merging calls with
        different ``n_items``) are padded to the widest.
        """
        results = list(results)
        if not results:
            return cls.empty()
        widths = {result.width for result in results}
        with_scores = all(result.scores is not None for result in results)
        if len(widths) == 1:
            items = np.vstack([result.items for result in results])
            lengths = np.concatenate([result.lengths for result in results])
            scores = (
                np.vstack([result.scores for result in results])
                if with_scores
                else None
            )
            return cls(items, lengths, scores)
        width = max(widths)
        total = sum(len(result) for result in results)
        items = np.full((total, width), -1, dtype=np.int32)
        lengths = np.empty(total, dtype=np.int32)
        scores = np.full((total, width), -np.inf, dtype=np.float64) if with_scores else None
        row = 0
        for result in results:
            stop = row + len(result)
            items[row:stop, : result.width] = result.items
            lengths[row:stop] = result.lengths
            if scores is not None:
                scores[row:stop, : result.width] = result.scores
            row = stop
        return cls(items, lengths, scores)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Number of ranked rows."""
        return self.items.shape[0]

    @property
    def width(self) -> int:
        """Allocated columns per row (the call's effective ``n``)."""
        return self.items.shape[1]

    # ------------------------------------------------------------------ #
    # Sequence protocol: rows as zero-copy views
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.items.shape[0]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TopNResult(
                self.items[index],
                self.lengths[index],
                None if self.scores is None else self.scores[index],
            )
        i = int(index)
        if i < 0:
            i += self.n_rows
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {index} out of range for {self.n_rows} rows")
        return self.items[i, : self.lengths[i]]

    def __iter__(self) -> Iterator[np.ndarray]:
        items, lengths = self.items, self.lengths
        for i in range(items.shape[0]):
            yield items[i, : lengths[i]]

    def row_scores(self, index: int) -> np.ndarray:
        """Scores of row ``index``'s valid prefix (zero-copy view)."""
        if self.scores is None:
            raise ValueError("this TopNResult carries no scores")
        i = int(index)
        if i < 0:
            i += self.n_rows
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {index} out of range for {self.n_rows} rows")
        return self.scores[i, : self.lengths[i]]

    def score_rows(self) -> List[np.ndarray]:
        """Per-row score views, aligned with the rankings."""
        return [self.row_scores(i) for i in range(self.n_rows)]

    def as_lists(self) -> List[np.ndarray]:
        """The legacy list-of-arrays shape (zero-copy row views)."""
        return list(self)

    def to_lists(self) -> List[List[int]]:
        """JSON-ready nested lists of plain ints (the gateway codec form)."""
        items, lengths = self.items, self.lengths
        return [items[i, : lengths[i]].tolist() for i in range(items.shape[0])]

    # ------------------------------------------------------------------ #
    # Equality (list-compatible) and pickling
    # ------------------------------------------------------------------ #
    def __eq__(self, other) -> bool:
        if isinstance(other, TopNResult):
            return len(self) == len(other) and all(
                np.array_equal(a, b) for a, b in zip(self, other)
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                np.array_equal(row, np.asarray(candidate))
                for row, candidate in zip(self, other)
            )
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # rows are mutable arrays

    def __reduce__(self):
        return (TopNResult, (self.items, self.lengths, self.scores))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scored = ", scored" if self.scores is not None else ""
        return f"TopNResult(n_rows={self.n_rows}, width={self.width}{scored})"
