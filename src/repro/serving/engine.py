"""Chunked top-N serving engine.

The paper's deployment (Section VIII) is a nightly batch job: score every
client against every product, rank, and ship the top lists to the sellers.
Doing that one user at a time — a Python loop over
:meth:`~repro.base.Recommender.recommend` — spends almost all of its time in
per-call overhead.  :class:`TopNEngine` instead scores users in configurable
chunks:

* one BLAS matrix product per chunk against the item factors (falling back
  to :meth:`~repro.base.Recommender.score_users` for models without a
  factor representation, so every recommender is served by the same path),
* already-seen training items masked directly from the CSR structure
  (``indptr``/``indices``), never densifying the interaction matrix,
* top-N selection with :func:`numpy.argpartition` followed by a stable sort
  of only the selected entries, instead of a full per-row sort.

The hot path is allocation-free in steady state: every chunk's dense score
block comes from a :class:`~repro.serving.buffers.ScoreBufferPool` (the
gather of the chunk's user factors too), the chunk size autotunes so
``chunk × n_items × itemsize`` stays inside a byte budget, and results land
directly in the flat :class:`~repro.serving.results.TopNResult` blocks
instead of per-user list objects.  On multi-core hosts the BLAS product of
chunk ``k+1`` overlaps the masking/selection of chunk ``k`` on a prefetch
thread (NumPy releases the GIL inside the gemm); chunks are independent and
write disjoint output rows, so pipelined rankings are bitwise the serial
ones.

Engines can also serve at a reduced precision: ``dtype="float32"`` casts
the factor matrices once at construction and scores every chunk at half the
memory bandwidth.  The default serving dtype is the factors' own, keeping
the float64 path bit-exact against the per-user reference.

The selection kernel is operation-for-operation the one used by
:meth:`Recommender.recommend`, and the post-matmul arithmetic is bitwise
equivalent, so the chunked rankings match the per-user ones except in the
measure-zero case where two scores land within one unit-in-the-last-place
of each other and the BLAS gemm/gemv accumulation orders disagree.  Exact
ties (e.g. both scores exactly 0) are bitwise identical in both paths and
resolve identically.  The test-suite asserts exact agreement on all
fixtures.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.factors import FactorModel
from repro.data.interactions import InteractionMatrix
from repro.exceptions import ConfigurationError, NotFittedError
from repro.serving.buffers import ScoreBufferPool, score_buffer_budget_bytes
from repro.serving.results import TopNResult
from repro.utils.validation import check_positive_int

#: Default number of users scored per BLAS call — an upper bound; the
#: effective chunk additionally honours the score-buffer byte budget (see
#: :meth:`TopNEngine.effective_chunk_size`).
DEFAULT_CHUNK_SIZE = 1024

#: Serving dtypes the engine accepts (scores are ranked, not summed, so
#: half-width floats keep ranking quality; see the float32 parity tests).
_SERVING_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


# --------------------------------------------------------------------------- #
# Shared prefetch executor for pipelined chunking
# --------------------------------------------------------------------------- #
# One small module-level pool rather than a thread per engine: test suites
# and notebooks create hundreds of engines, and the prefetch stage is a
# single GIL-releasing BLAS call, so a couple of threads serve everyone.
_PREFETCH_LOCK = threading.Lock()
_PREFETCH: Optional[ThreadPoolExecutor] = None


def _prefetch_executor() -> ThreadPoolExecutor:
    global _PREFETCH
    if _PREFETCH is None:
        with _PREFETCH_LOCK:
            if _PREFETCH is None:
                workers = max(1, min(4, os.cpu_count() or 1))
                _PREFETCH = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="topn-prefetch"
                )
    return _PREFETCH


def _reset_prefetch_after_fork() -> None:
    # A forked child must not inherit the parent's executor threads (they do
    # not exist in the child) or a lock captured mid-acquire.
    global _PREFETCH, _PREFETCH_LOCK
    _PREFETCH = None
    _PREFETCH_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix in CI
    os.register_at_fork(after_in_child=_reset_prefetch_after_fork)


class TopNEngine:
    """Vectorised batch top-N ranking over a fitted recommender.

    Construct with :meth:`from_model` (any fitted
    :class:`~repro.base.Recommender`) or :meth:`from_factors` (a
    :class:`~repro.core.factors.FactorModel` plus its training matrix, the
    fast path used for serving and fold-in cold-start).

    Parameters
    ----------
    dtype:
        Serving dtype (``"float32"`` / ``"float64"``).  ``None`` (default)
        serves in the factors' own dtype — bit-exact.  ``"float32"`` on
        float64-trained factors casts serving copies once and scores at
        half bandwidth; rankings then agree with float64 up to score ties
        within float32 resolution (see the parity tests).
    buffer_budget_mb:
        Byte budget (MiB) for one chunk's score block; caps the effective
        chunk size.  Defaults to the :data:`~repro.serving.buffers.
        BUFFER_BUDGET_ENV` environment value or 128 MiB.
    pipeline:
        ``True``/``False`` forces pipelined chunking on/off; ``None``
        (default) enables it on multi-core hosts for factor-path engines.

    The engine holds only plain arrays / sparse matrices (the buffer pool
    resets on pickling), so it pickles and can be shipped to worker
    processes by :func:`repro.serving.batch.serve_sharded`.
    """

    def __init__(
        self,
        train_matrix: InteractionMatrix,
        factors: Optional[FactorModel] = None,
        model=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        dtype: Optional[Union[str, np.dtype]] = None,
        buffer_budget_mb: Optional[float] = None,
        pipeline: Optional[bool] = None,
    ) -> None:
        if factors is None and model is None:
            raise ConfigurationError("TopNEngine needs a FactorModel or a fitted model")
        if factors is not None and factors.n_items != train_matrix.n_items:
            raise ConfigurationError(
                f"factors have {factors.n_items} items but the training matrix has "
                f"{train_matrix.n_items}"
            )
        self.train_matrix = train_matrix
        self.factors = factors
        self.model = model
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        if dtype is None:
            serving_dtype = (
                factors.dtype if factors is not None else np.dtype(np.float64)
            )
        else:
            serving_dtype = np.dtype(dtype)
        if np.dtype(serving_dtype) not in _SERVING_DTYPES:
            raise ConfigurationError(
                f"serving dtype must be float32 or float64, got {serving_dtype}"
            )
        self.serving_dtype = np.dtype(serving_dtype)
        if factors is not None and factors.dtype != self.serving_dtype:
            # One cast at construction buys half-bandwidth scoring on every
            # chunk; the original factors stay untouched (fold-in and
            # publication of the training-precision model read them).
            self._serving_user_factors = factors.user_factors.astype(self.serving_dtype)
            self._serving_item_factors = factors.item_factors.astype(self.serving_dtype)
        elif factors is not None:
            self._serving_user_factors = factors.user_factors
            self._serving_item_factors = factors.item_factors
        else:
            self._serving_user_factors = None
            self._serving_item_factors = None
        self.buffer_budget_bytes = score_buffer_budget_bytes(buffer_budget_mb)
        self.pipeline = pipeline
        self.pool = ScoreBufferPool()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_model(
        cls,
        model,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        dtype: Optional[Union[str, np.dtype]] = None,
        buffer_budget_mb: Optional[float] = None,
        pipeline: Optional[bool] = None,
    ) -> "TopNEngine":
        """Build an engine for any fitted recommender.

        Models declaring ``serving_factors_`` — a :class:`FactorModel` whose
        probability formula is exactly the model's scoring (OCuLaR and its
        variants, including the bias-augmented factors of ``BiasedOCuLaR``)
        — are served through the direct BLAS path; everything else is scored
        chunk-wise via ``model.score_users``.
        """
        if not getattr(model, "is_fitted", False):
            raise NotFittedError("TopNEngine requires a fitted recommender")
        factors = getattr(model, "serving_factors_", None)
        if isinstance(factors, FactorModel):
            return cls(
                model.train_matrix,
                factors=factors,
                chunk_size=chunk_size,
                dtype=dtype,
                buffer_budget_mb=buffer_budget_mb,
                pipeline=pipeline,
            )
        return cls(
            model.train_matrix,
            model=model,
            chunk_size=chunk_size,
            dtype=dtype,
            buffer_budget_mb=buffer_budget_mb,
            pipeline=pipeline,
        )

    @classmethod
    def from_factors(
        cls,
        factors: FactorModel,
        train_matrix: InteractionMatrix,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        dtype: Optional[Union[str, np.dtype]] = None,
        buffer_budget_mb: Optional[float] = None,
        pipeline: Optional[bool] = None,
    ) -> "TopNEngine":
        """Build an engine directly from factor matrices (the serving path)."""
        return cls(
            train_matrix,
            factors=factors,
            chunk_size=chunk_size,
            dtype=dtype,
            buffer_budget_mb=buffer_budget_mb,
            pipeline=pipeline,
        )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    @property
    def n_items(self) -> int:
        """Catalogue size."""
        return self.train_matrix.n_items

    @property
    def serving_user_factors(self) -> Optional[np.ndarray]:
        """User factors in the serving dtype (factor path only)."""
        return self._serving_user_factors

    @property
    def serving_item_factors(self) -> Optional[np.ndarray]:
        """Item factors in the serving dtype (factor path only)."""
        return self._serving_item_factors

    def effective_chunk_size(self, chunk_size: Optional[int] = None) -> int:
        """Rows per chunk after the score-buffer budget cap.

        ``min(requested, floor(budget / row_bytes))`` with a floor of one
        row, where ``row_bytes = n_items × itemsize`` of the serving dtype.
        A 100k-item float64 catalogue under the default 128 MiB budget
        serves ~160-row chunks instead of 800 MB blocks.
        """
        size = (
            self.chunk_size
            if chunk_size is None
            else check_positive_int(chunk_size, "chunk_size")
        )
        row_bytes = max(1, self.n_items) * self.serving_dtype.itemsize
        return max(1, min(size, self.buffer_budget_bytes // row_bytes or 1))

    def score_chunk(self, users: np.ndarray) -> np.ndarray:
        """Dense score block for a chunk of users, shape ``(len(users), n_items)``.

        The factor path computes ``1 - exp(-F_u[users] @ F_i^T)`` in one
        matrix product; the generic path delegates to the model's
        ``score_users``.  The caller owns the returned block.
        """
        users = np.asarray(users, dtype=np.int64)
        neg = self._neg_scores_pooled(users)
        block = np.negative(neg)
        self.pool.release(neg)
        return block

    def _neg_scores_pooled(self, users: np.ndarray) -> np.ndarray:
        """*Negated* score block (the form the selection kernel consumes).

        The factor path gathers the chunk's user factors and computes
        ``exp(-aff) - 1`` with in-place ufuncs into a pooled block: one BLAS
        product, zero fresh allocations in steady state.  IEEE subtraction
        is antisymmetric (``fl(e - 1) == -fl(1 - e)`` exactly), so this is
        bitwise the negation of the probability ``1 - exp(-aff)`` that the
        per-user reference path ranks by.  The caller must release the
        returned block back to :attr:`pool`.
        """
        rows = users.shape[0]
        if self._serving_user_factors is not None:
            gather = self.pool.take(
                rows, self._serving_user_factors.shape[1], self.serving_dtype
            )
            np.take(self._serving_user_factors, users, axis=0, out=gather)
            block = self.pool.take(rows, self.n_items, self.serving_dtype)
            np.matmul(gather, self._serving_item_factors.T, out=block)
            self.pool.release(gather)
            np.negative(block, out=block)
            np.exp(block, out=block)
            np.subtract(block, 1.0, out=block)
            return block
        scores = np.asarray(self.model.score_users(users), dtype=self.serving_dtype)
        if scores.shape != (rows, self.n_items):
            raise ConfigurationError(
                f"score_users must return shape ({rows}, {self.n_items}), "
                f"got {scores.shape}"
            )
        block = self.pool.take(rows, self.n_items, self.serving_dtype)
        np.negative(scores, out=block)
        return block

    # ------------------------------------------------------------------ #
    # Ranking
    # ------------------------------------------------------------------ #
    def topn(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
        chunk_size: Optional[int] = None,
        with_scores: bool = False,
        pipeline: Optional[bool] = None,
    ) -> TopNResult:
        """Flat top-``n_items`` rankings for many users — the core hot path.

        Returns a :class:`~repro.serving.results.TopNResult` aligned with
        ``users``; rows may be shorter than ``n_items`` when a user has
        fewer unseen items than requested (exactly like
        :meth:`Recommender.recommend`, which never pads with excluded
        items).  With ``with_scores`` the ranked entries' scores ride along
        in the result's flat score block — gathered from the block already
        computed for the selection, no rescoring pass.
        """
        check_positive_int(n_items, "n_items")
        user_array = np.asarray(list(users), dtype=np.int64)
        n = min(n_items, self.n_items)
        if user_array.size == 0:
            return TopNResult.empty(width=n, with_scores=with_scores)
        if user_array.min() < 0 or user_array.max() >= self.train_matrix.n_users:
            raise ConfigurationError(
                f"user indices must lie in [0, {self.train_matrix.n_users})"
            )
        size = self.effective_chunk_size(chunk_size)
        total = int(user_array.size)
        out_items = np.full((total, n), -1, dtype=np.int32)
        out_lengths = np.empty(total, dtype=np.int32)
        out_scores = (
            np.empty((total, n), dtype=self.serving_dtype) if with_scores else None
        )
        csr = self.train_matrix.csr() if exclude_seen else None
        starts = list(range(0, total, size))
        if self._resolve_pipeline(pipeline) and len(starts) > 1:
            executor = _prefetch_executor()
            future = executor.submit(
                self._neg_scores_pooled, user_array[starts[0] : starts[0] + size]
            )
            for index, start in enumerate(starts):
                neg_scores = future.result()
                if index + 1 < len(starts):
                    nxt = starts[index + 1]
                    future = executor.submit(
                        self._neg_scores_pooled, user_array[nxt : nxt + size]
                    )
                chunk = user_array[start : start + size]
                self._select_chunk(
                    neg_scores, chunk, csr, start, out_items, out_lengths, out_scores
                )
                self.pool.release(neg_scores)
        else:
            for start in starts:
                chunk = user_array[start : start + size]
                neg_scores = self._neg_scores_pooled(chunk)
                self._select_chunk(
                    neg_scores, chunk, csr, start, out_items, out_lengths, out_scores
                )
                self.pool.release(neg_scores)
        return TopNResult(out_items, out_lengths, out_scores)

    def recommend_batch(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
        chunk_size: Optional[int] = None,
        return_scores: bool = False,
    ) -> Union[TopNResult, Tuple[TopNResult, List[np.ndarray]]]:
        """Top-``n_items`` lists for many users, one chunk at a time.

        Returns a flat :class:`~repro.serving.results.TopNResult` aligned
        with ``users`` — it iterates, indexes and compares like the
        list-of-arrays this method used to return, so row-wise callers are
        unchanged.  With ``return_scores`` the return value is a
        ``(rankings, scores)`` pair, the scores one view per row aligned
        entry-for-entry with each ranking.  Empty input yields an empty
        result (and an empty score list) — the same shapes as non-empty
        input, with zero rows.
        """
        result = self.topn(
            users,
            n_items=n_items,
            exclude_seen=exclude_seen,
            chunk_size=chunk_size,
            with_scores=return_scores,
        )
        if return_scores:
            return result, result.score_rows()
        return result

    def recommend_batch_lists(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
        chunk_size: Optional[int] = None,
        return_scores: bool = False,
    ):
        """Deprecated list-of-arrays shim over :meth:`recommend_batch`."""
        warnings.warn(
            "TopNEngine.recommend_batch_lists() is deprecated; recommend_batch() "
            "returns a TopNResult that supports the same row-wise access "
            "(use .as_lists() if a plain list is required)",
            DeprecationWarning,
            stacklevel=2,
        )
        result = self.recommend_batch(
            users,
            n_items=n_items,
            exclude_seen=exclude_seen,
            chunk_size=chunk_size,
            return_scores=return_scores,
        )
        if return_scores:
            rankings, scores = result
            return rankings.as_lists(), scores
        return result.as_lists()

    def recommend_many(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
    ) -> dict[int, np.ndarray]:
        """Mapping form of :meth:`recommend_batch` (user -> ranked items)."""
        user_list = [int(user) for user in users]
        lists = self.recommend_batch(user_list, n_items=n_items, exclude_seen=exclude_seen)
        return dict(zip(user_list, lists))

    def recommend_user(self, user: int, n_items: int = 10, exclude_seen: bool = True) -> np.ndarray:
        """Single-user convenience wrapper around :meth:`recommend_batch`."""
        return self.recommend_batch([user], n_items=n_items, exclude_seen=exclude_seen)[0]

    def rank_scored(
        self,
        scores: np.ndarray,
        n_items: int = 10,
        seen: Optional[sp.csr_matrix] = None,
        return_scores: bool = False,
        writable: bool = False,
    ) -> Union[TopNResult, Tuple[TopNResult, List[np.ndarray]]]:
        """Rank externally computed score rows (the fold-in serving path).

        Parameters
        ----------
        scores:
            Dense score block, shape ``(n_rows, n_items)``.  Not modified
            unless ``writable`` is set.
        n_items:
            List length.
        seen:
            Optional CSR matrix of shape ``(n_rows, n_items)`` whose
            non-zeros are excluded from the rankings — for fold-in users
            this is their interaction vector, playing the role the training
            row plays for in-matrix users.
        return_scores:
            Also return the score of every ranked entry; the return value
            is then a ``(rankings, scores)`` pair and the result's flat
            score block is populated.
        writable:
            The caller owns ``scores`` and the engine may negate it in
            place instead of copying into a pooled buffer — the zero-copy
            path for freshly computed fold-in blocks.  The array's contents
            are destroyed.
        """
        check_positive_int(n_items, "n_items")
        raw = np.asarray(scores)
        if raw.dtype not in _SERVING_DTYPES:
            raw = raw.astype(np.float64)
            writable = True  # the cast copy is ours to negate
        if raw.ndim != 2 or raw.shape[1] != self.n_items:
            raise ConfigurationError(
                f"scores must have shape (n_rows, {self.n_items}), got {raw.shape}"
            )
        n_rows = raw.shape[0]
        n = min(n_items, self.n_items)
        if seen is not None:
            seen = sp.csr_matrix(seen)
            if seen.shape != raw.shape:
                raise ConfigurationError(
                    f"seen matrix shape {seen.shape} does not match scores {raw.shape}"
                )
        if n_rows == 0:
            result = TopNResult.empty(width=n, with_scores=return_scores)
            return (result, []) if return_scores else result
        if writable and raw.flags.writeable:
            neg_scores = np.negative(raw, out=raw)
            pooled = None
        else:
            pooled = self.pool.take(n_rows, self.n_items, raw.dtype)
            neg_scores = np.negative(raw, out=pooled)
        if seen is not None:
            self._mask_seen(neg_scores, np.arange(n_rows), seen)
        out_items = np.full((n_rows, n), -1, dtype=np.int32)
        out_lengths = np.empty(n_rows, dtype=np.int32)
        out_scores = np.empty((n_rows, n), dtype=neg_scores.dtype) if return_scores else None
        self._select_rows(neg_scores, n, out_items, out_lengths, out_scores, row0=0)
        if pooled is not None:
            self.pool.release(pooled)
        result = TopNResult(out_items, out_lengths, out_scores)
        if return_scores:
            return result, result.score_rows()
        return result

    # ------------------------------------------------------------------ #
    # Kernels
    # ------------------------------------------------------------------ #
    def _resolve_pipeline(self, pipeline: Optional[bool]) -> bool:
        """Whether this call overlaps scoring with selection.

        Explicit per-call flag, then the engine's construction flag, then
        auto: multi-core hosts pipeline factor-path engines (the model path
        may not be thread-safe, so it never pipelines implicitly).
        """
        flag = self.pipeline if pipeline is None else pipeline
        if self._serving_user_factors is None and flag is None:
            return False
        if flag is None:
            return (os.cpu_count() or 1) > 1
        return bool(flag)

    @staticmethod
    def _mask_seen(neg_scores: np.ndarray, rows: np.ndarray, csr: sp.csr_matrix) -> None:
        """Write ``+inf`` over the training positives of ``rows``, in place.

        ``neg_scores`` holds negated scores, so ``+inf`` here plays the role
        ``-inf`` plays in the per-user reference path.  Each row's positives
        are sliced straight out of the CSR ``indptr``/``indices`` arrays —
        no densified mask and no full-size scratch arrays; the only
        temporaries are the two ``len(rows)``-long pointer gathers.
        """
        indptr, indices = csr.indptr, csr.indices
        rows = np.asarray(rows, dtype=np.int64)
        starts = indptr[rows]
        stops = indptr[rows + 1]
        for i, (start, stop) in enumerate(zip(starts.tolist(), stops.tolist())):
            if start != stop:
                neg_scores[i, indices[start:stop]] = np.inf

    def _select_chunk(
        self,
        neg_scores: np.ndarray,
        chunk_users: np.ndarray,
        csr: Optional[sp.csr_matrix],
        row0: int,
        out_items: np.ndarray,
        out_lengths: np.ndarray,
        out_scores: Optional[np.ndarray],
    ) -> None:
        """Mask and select one scored chunk into the flat output blocks."""
        if csr is not None:
            self._mask_seen(neg_scores, chunk_users, csr)
        self._select_rows(neg_scores, out_items.shape[1], out_items, out_lengths, out_scores, row0)

    @staticmethod
    def _select_rows(
        neg_scores: np.ndarray,
        n: int,
        out_items: np.ndarray,
        out_lengths: np.ndarray,
        out_scores: Optional[np.ndarray],
        row0: int,
    ) -> None:
        """Per-row top-N selection, identical to ``Recommender.recommend``.

        Operates on *negated* scores: ``argpartition`` pulls the ``n``
        smallest entries of every row without a full sort (the same
        partition the reference path runs on ``-scores``), then a stable
        ascending sort orders just those entries.  Masked (``+inf``)
        entries sort to each row's tail, so a row's valid ranking is a
        prefix: its length is the finite count, and padding positions hold
        ``-1`` (items) / ``-inf`` (scores).  Results are written into the
        flat blocks at ``row0`` — no per-row list objects.
        """
        rows = neg_scores.shape[0]
        top = np.argpartition(neg_scores, n - 1, axis=1)[:, :n]
        top_scores = np.take_along_axis(neg_scores, top, axis=1)
        order = np.argsort(top_scores, axis=1, kind="stable")
        ranked = np.take_along_axis(top, order, axis=1)
        ranked_scores = np.take_along_axis(top_scores, order, axis=1)
        finite = np.isfinite(ranked_scores)
        block = out_items[row0 : row0 + rows]
        block[...] = ranked
        out_lengths[row0 : row0 + rows] = finite.sum(axis=1, dtype=np.int32)
        if not finite.all():
            block[~finite] = -1
        if out_scores is not None:
            np.negative(ranked_scores, out=ranked_scores)
            out_scores[row0 : row0 + rows] = ranked_scores

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        path = "factors" if self.factors is not None else type(self.model).__name__
        return (
            f"TopNEngine(path={path!r}, n_users={self.train_matrix.n_users}, "
            f"n_items={self.n_items}, chunk_size={self.chunk_size}, "
            f"dtype={self.serving_dtype.name})"
        )
