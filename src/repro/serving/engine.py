"""Chunked top-N serving engine.

The paper's deployment (Section VIII) is a nightly batch job: score every
client against every product, rank, and ship the top lists to the sellers.
Doing that one user at a time — a Python loop over
:meth:`~repro.base.Recommender.recommend` — spends almost all of its time in
per-call overhead.  :class:`TopNEngine` instead scores users in configurable
chunks:

* one BLAS matrix product per chunk against the item factors (falling back
  to :meth:`~repro.base.Recommender.score_users` for models without a
  factor representation, so every recommender is served by the same path),
* already-seen training items masked directly from the CSR structure
  (``indptr``/``indices``), never densifying the interaction matrix,
* top-N selection with :func:`numpy.argpartition` followed by a stable sort
  of only the selected entries, instead of a full per-row sort.

The selection kernel is operation-for-operation the one used by
:meth:`Recommender.recommend`, and the post-matmul arithmetic is bitwise
equivalent, so the chunked rankings match the per-user ones except in the
measure-zero case where two scores land within one unit-in-the-last-place
of each other and the BLAS gemm/gemv accumulation orders disagree.  Exact
ties (e.g. both scores exactly 0) are bitwise identical in both paths and
resolve identically.  The test-suite asserts exact agreement on all
fixtures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.factors import FactorModel
from repro.data.interactions import InteractionMatrix
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.validation import check_positive_int

#: Default number of users scored per BLAS call.  Large enough to amortise
#: call overhead, small enough that a chunk's dense score block stays in cache
#: for catalogue sizes in the tens of thousands.
DEFAULT_CHUNK_SIZE = 1024


class TopNEngine:
    """Vectorised batch top-N ranking over a fitted recommender.

    Construct with :meth:`from_model` (any fitted
    :class:`~repro.base.Recommender`) or :meth:`from_factors` (a
    :class:`~repro.core.factors.FactorModel` plus its training matrix, the
    fast path used for serving and fold-in cold-start).

    The engine holds only plain arrays / sparse matrices, so it pickles and
    can be shipped to worker processes by
    :func:`repro.serving.batch.serve_sharded`.
    """

    def __init__(
        self,
        train_matrix: InteractionMatrix,
        factors: Optional[FactorModel] = None,
        model=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if factors is None and model is None:
            raise ConfigurationError("TopNEngine needs a FactorModel or a fitted model")
        if factors is not None and factors.n_items != train_matrix.n_items:
            raise ConfigurationError(
                f"factors have {factors.n_items} items but the training matrix has "
                f"{train_matrix.n_items}"
            )
        self.train_matrix = train_matrix
        self.factors = factors
        self.model = model
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_model(cls, model, chunk_size: int = DEFAULT_CHUNK_SIZE) -> "TopNEngine":
        """Build an engine for any fitted recommender.

        Models declaring ``serving_factors_`` — a :class:`FactorModel` whose
        probability formula is exactly the model's scoring (OCuLaR and its
        variants, including the bias-augmented factors of ``BiasedOCuLaR``)
        — are served through the direct BLAS path; everything else is scored
        chunk-wise via ``model.score_users``.
        """
        if not getattr(model, "is_fitted", False):
            raise NotFittedError("TopNEngine requires a fitted recommender")
        factors = getattr(model, "serving_factors_", None)
        if isinstance(factors, FactorModel):
            return cls(model.train_matrix, factors=factors, chunk_size=chunk_size)
        return cls(model.train_matrix, model=model, chunk_size=chunk_size)

    @classmethod
    def from_factors(
        cls,
        factors: FactorModel,
        train_matrix: InteractionMatrix,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "TopNEngine":
        """Build an engine directly from factor matrices (the serving path)."""
        return cls(train_matrix, factors=factors, chunk_size=chunk_size)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    @property
    def n_items(self) -> int:
        """Catalogue size."""
        return self.train_matrix.n_items

    def score_chunk(self, users: np.ndarray) -> np.ndarray:
        """Dense score block for a chunk of users, shape ``(len(users), n_items)``.

        The factor path computes ``1 - exp(-F_u[users] @ F_i^T)`` in one
        matrix product; the generic path delegates to the model's
        ``score_users``.
        """
        neg = self._neg_score_chunk(np.asarray(users, dtype=np.int64))
        return np.negative(neg, out=neg)

    def _neg_score_chunk(self, users: np.ndarray) -> np.ndarray:
        """*Negated* score block (the form the selection kernel consumes).

        The factor path computes ``exp(-aff) - 1`` with in-place ufuncs: one
        BLAS product and no temporaries beyond the score block itself.  IEEE
        subtraction is antisymmetric (``fl(e - 1) == -fl(1 - e)`` exactly),
        so this is bitwise the negation of the probability ``1 - exp(-aff)``
        that the per-user reference path ranks by — parity is preserved
        while the explicit negation pass before ``argpartition`` disappears.
        """
        if self.factors is not None:
            block = self.factors.user_factors[users] @ self.factors.item_factors.T
            np.negative(block, out=block)
            np.exp(block, out=block)
            np.subtract(block, 1.0, out=block)
            return block
        scores = np.array(self.model.score_users(users), dtype=float)
        if scores.shape != (len(users), self.n_items):
            raise ConfigurationError(
                f"score_users must return shape ({len(users)}, {self.n_items}), "
                f"got {scores.shape}"
            )
        return np.negative(scores, out=scores)

    # ------------------------------------------------------------------ #
    # Ranking
    # ------------------------------------------------------------------ #
    def recommend_batch(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
        chunk_size: Optional[int] = None,
        return_scores: bool = False,
    ) -> List[np.ndarray]:
        """Top-``n_items`` lists for many users, one chunk at a time.

        Returns one ranked index array per user, aligned with ``users``.
        Lists may be shorter than ``n_items`` when a user has fewer unseen
        items than requested (exactly like :meth:`Recommender.recommend`,
        which never pads with excluded items).  With ``return_scores`` the
        return value is a ``(rankings, scores)`` pair, the scores aligned
        entry-for-entry with each ranking (gathered from the block already
        computed for the selection — no rescoring pass).
        """
        check_positive_int(n_items, "n_items")
        user_array = np.asarray(list(users), dtype=np.int64)
        if user_array.size == 0:
            return ([], []) if return_scores else []
        if user_array.min() < 0 or user_array.max() >= self.train_matrix.n_users:
            raise ConfigurationError(
                f"user indices must lie in [0, {self.train_matrix.n_users})"
            )
        size = self.chunk_size if chunk_size is None else check_positive_int(chunk_size, "chunk_size")

        ranked: List[np.ndarray] = []
        scores: List[np.ndarray] = []
        csr = self.train_matrix.csr()
        for start in range(0, user_array.size, size):
            chunk = user_array[start : start + size]
            neg_scores = self._neg_score_chunk(chunk)
            if exclude_seen:
                self._mask_seen(neg_scores, chunk, csr)
            if return_scores:
                rows, row_scores = self._top_n_rows(neg_scores, n_items, with_scores=True)
                ranked.extend(rows)
                scores.extend(row_scores)
            else:
                ranked.extend(self._top_n_rows(neg_scores, n_items))
        return (ranked, scores) if return_scores else ranked

    def recommend_many(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
    ) -> dict[int, np.ndarray]:
        """Mapping form of :meth:`recommend_batch` (user -> ranked items)."""
        user_list = [int(user) for user in users]
        lists = self.recommend_batch(user_list, n_items=n_items, exclude_seen=exclude_seen)
        return dict(zip(user_list, lists))

    def recommend_user(self, user: int, n_items: int = 10, exclude_seen: bool = True) -> np.ndarray:
        """Single-user convenience wrapper around :meth:`recommend_batch`."""
        return self.recommend_batch([user], n_items=n_items, exclude_seen=exclude_seen)[0]

    def rank_scored(
        self,
        scores: np.ndarray,
        n_items: int = 10,
        seen: Optional[sp.csr_matrix] = None,
        return_scores: bool = False,
    ) -> List[np.ndarray]:
        """Rank externally computed score rows (the fold-in serving path).

        Parameters
        ----------
        scores:
            Dense score block, shape ``(n_rows, n_items)``; not modified.
        n_items:
            List length.
        seen:
            Optional CSR matrix of shape ``(n_rows, n_items)`` whose
            non-zeros are excluded from the rankings — for fold-in users
            this is their interaction vector, playing the role the training
            row plays for in-matrix users.
        return_scores:
            Also return the score of every ranked entry; the return value
            is then a ``(rankings, scores)`` pair.
        """
        check_positive_int(n_items, "n_items")
        scores = np.asarray(scores, dtype=float)
        if scores.ndim != 2 or scores.shape[1] != self.n_items:
            raise ConfigurationError(
                f"scores must have shape (n_rows, {self.n_items}), got {scores.shape}"
            )
        neg_scores = -scores
        if seen is not None:
            seen = sp.csr_matrix(seen)
            if seen.shape != scores.shape:
                raise ConfigurationError(
                    f"seen matrix shape {seen.shape} does not match scores {scores.shape}"
                )
            self._mask_seen(neg_scores, np.arange(neg_scores.shape[0]), seen)
        return self._top_n_rows(neg_scores, n_items, with_scores=return_scores)

    # ------------------------------------------------------------------ #
    # Kernels
    # ------------------------------------------------------------------ #
    @staticmethod
    def _mask_seen(neg_scores: np.ndarray, rows: np.ndarray, csr: sp.csr_matrix) -> None:
        """Write ``+inf`` over the training positives of ``rows``, in place.

        ``neg_scores`` holds negated scores, so ``+inf`` here plays the role
        ``-inf`` plays in the per-user reference path.  The (row, item)
        positives of the chunk are gathered straight from the CSR
        ``indptr``/``indices`` arrays — no per-user Python loop and no
        densified mask.
        """
        indptr, indices = csr.indptr, csr.indices
        counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return
        starts = indptr[rows].astype(np.int64)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        positions = np.repeat(starts, counts) + offsets
        chunk_rows = np.repeat(np.arange(len(rows)), counts)
        neg_scores[chunk_rows, indices[positions]] = np.inf

    @staticmethod
    def _top_n_rows(
        neg_scores: np.ndarray, n_items: int, with_scores: bool = False
    ) -> List[np.ndarray]:
        """Per-row top-N selection, identical to ``Recommender.recommend``.

        Operates on *negated* scores: ``argpartition`` pulls the ``n``
        smallest entries of every row without a full sort (the same
        partition the reference path runs on ``-scores``), then a stable
        ascending sort orders just those entries.  Rows keep only their
        finite (non-masked) entries, so heavily-seen users get shorter
        lists rather than padded ones.  With ``with_scores`` the (negated
        back) scores of the selected entries ride along as a second list.
        """
        n = min(n_items, neg_scores.shape[1])
        top = np.argpartition(neg_scores, n - 1, axis=1)[:, :n]
        top_scores = np.take_along_axis(neg_scores, top, axis=1)
        order = np.argsort(top_scores, axis=1, kind="stable")
        ranked = np.take_along_axis(top, order, axis=1)
        ranked_scores = np.take_along_axis(top_scores, order, axis=1)
        finite = np.isfinite(ranked_scores)
        if finite.all():
            if with_scores:
                return list(ranked), list(np.negative(ranked_scores))
            return list(ranked)
        rows = [row[keep] for row, keep in zip(ranked, finite)]
        if with_scores:
            return rows, [-row[keep] for row, keep in zip(ranked_scores, finite)]
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        path = "factors" if self.factors is not None else type(self.model).__name__
        return (
            f"TopNEngine(path={path!r}, n_users={self.train_matrix.n_users}, "
            f"n_items={self.n_items}, chunk_size={self.chunk_size})"
        )
