"""Zero-copy shared-memory serving: publish a ``TopNEngine`` as descriptors.

``serve_sharded(executor="process")`` originally pickled the whole
:class:`~repro.serving.engine.TopNEngine` — factor matrices and training CSR
included — into every shard task, which swamps task dispatch for any model
worth sharding.  This module removes that cost with the same
:class:`~repro.parallel.shared_memory.SharedArraySpec` machinery the training
engine uses: the engine's factor matrices and the training-CSR seen-mask are
placed in shared memory **once per model version**, and shard tasks carry
only a :class:`SharedEngineSpec` — a handful of segment names — plus their
user lists.  Workers attach the segments zero-copy and rebuild an engine
whose rankings are byte-identical to the publishing process's engine (the
arrays are literally the same bytes and the kernels are the same code).

Producers: :func:`publish_engine` / :func:`unpublish_engine` (used per call
by :func:`~repro.serving.batch.serve_sharded`, and per model *generation* by
:class:`~repro.runtime.RecommenderRuntime`, which holds one publication
across many serving calls and swaps it atomically on model updates).

Workers: :func:`attach_engine` caches the rebuilt engine per spec; when a new
generation arrives it drops engines of old generations and closes their now
unreferenced attachments, so long-lived workers do not accumulate mappings of
unlinked segments.
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import scipy.sparse as sp

from repro.data.interactions import InteractionMatrix
from repro.core.factors import FactorModel
from repro.parallel.shared_memory import (
    SharedArraySpec,
    SharedCsrSpec,
    attach_shared_array,
    attach_shared_csr,
    close_stale_attachments,
    register_attachment_holder,
    spec_is_live,
    touch_attachments,
)
from repro.serving.engine import TopNEngine


@dataclass(frozen=True)
class SharedEngineSpec:
    """Everything a worker needs to rebuild a factor-path ``TopNEngine``.

    Pickles to a few hundred bytes regardless of model size — this is the
    entire per-task payload of descriptor-based sharded serving, next to the
    shard's user list.
    """

    generation: int
    chunk_size: int
    user_factors: SharedArraySpec
    item_factors: SharedArraySpec
    seen: SharedCsrSpec
    #: Serving dtype string (e.g. ``"float32"``); ``None`` means the
    #: published arrays' native dtype.  The published arrays are already in
    #: this dtype, so workers never cast — publisher and worker score the
    #: same bytes.
    dtype: Optional[str] = None

    def segment_names(self) -> List[str]:
        """Names of every segment backing this engine."""
        return [
            self.user_factors.shm_name,
            self.item_factors.shm_name,
            *self.seen.segment_names(),
        ]

    def array_specs(self) -> List[Any]:
        """The five component array descriptors, in key-layout order.

        The generic form of :meth:`segment_names`: liveness probing and
        fetch bookkeeping work per *descriptor* (shared-memory spec or
        cluster object ref), not per segment-name string.
        """
        return [
            self.user_factors,
            self.item_factors,
            self.seen.data,
            self.seen.indices,
            self.seen.indptr,
        ]


#: Process-wide source of unique publication generations.  ``itertools.count``
#: is atomic under the GIL, so concurrent publishers never collide on keys.
_GENERATIONS = itertools.count(1)


def next_generation() -> int:
    """Reserve a fresh, process-unique publication generation."""
    return next(_GENERATIONS)


def _engine_keys(generation: int) -> List[Tuple]:
    """The executor slot keys one engine generation occupies.

    The single source of truth for the key layout — :func:`publish_engine`
    and :func:`unpublish_engine` both derive from it, so they cannot drift.
    """
    return [
        ("engine", generation, "user_factors"),
        ("engine", generation, "item_factors"),
        ("engine", generation, "seen", "data"),
        ("engine", generation, "seen", "indices"),
        ("engine", generation, "seen", "indptr"),
    ]


def publish_csr(
    executor: Any,
    matrix: sp.csr_matrix,
    key_prefix: Tuple,
    evictable: bool = True,
) -> SharedCsrSpec:
    """Publish a CSR matrix's three arrays under ``key_prefix``-derived keys.

    ``executor`` is any publication-capable executor (see
    :func:`~repro.parallel.shared_memory.supports_publication`): the
    shared-memory pool yields segment-backed specs, the cluster executor
    object-store refs — both compose into the same :class:`SharedCsrSpec`.
    """
    return SharedCsrSpec(
        shape=tuple(matrix.shape),
        data=executor.publish(key_prefix + ("data",), matrix.data, evictable=evictable),
        indices=executor.publish(
            key_prefix + ("indices",), matrix.indices, evictable=evictable
        ),
        indptr=executor.publish(
            key_prefix + ("indptr",), matrix.indptr, evictable=evictable
        ),
    )


def publish_engine(
    executor: Any,
    engine: TopNEngine,
    generation: Optional[int] = None,
) -> SharedEngineSpec:
    """Place an engine's factor matrices and seen-mask in shared memory.

    One copy per array per model version; the returned spec is the complete
    task payload for :func:`_topn_shard`.  Requires a factor-path engine —
    model-path engines have no arrays to share and must be pickled instead.
    """
    if engine.factors is None:
        raise ValueError(
            "publish_engine requires a factor-path TopNEngine; model-path "
            "engines must be shipped by value"
        )
    if generation is None:
        generation = next_generation()
    csr = engine.train_matrix.csr()
    user_key, item_key = _engine_keys(generation)[:2]
    # Non-evictable: a published model version must stay attachable until
    # unpublish_engine — LRU churn from per-call publications (fold-in
    # blocks) must never silently unlink a generation workers still serve.
    # The *serving*-dtype arrays are published (for a float32-serving engine
    # that is half the shared-memory footprint and bandwidth), so workers
    # score byte-identically to the publisher without casting.
    return SharedEngineSpec(
        generation=generation,
        chunk_size=engine.chunk_size,
        user_factors=executor.publish(
            user_key, engine.serving_user_factors, evictable=False
        ),
        item_factors=executor.publish(
            item_key, engine.serving_item_factors, evictable=False
        ),
        seen=publish_csr(
            executor, csr, ("engine", generation, "seen"), evictable=False
        ),
        dtype=str(engine.serving_dtype),
    )


def unpublish_engine(executor: Any, spec: SharedEngineSpec) -> None:
    """Unlink one published engine generation.

    Safe while serving tasks are in flight: workers already attached keep
    valid mappings until their processes exit or prune them; only the
    ``/dev/shm`` names disappear now.
    """
    for key in _engine_keys(spec.generation):
        executor.unpublish(key)


#: Worker-process-local cache of rebuilt engines, keyed by spec and ordered
#: by recency (least recently served first).  A serving burst sends many
#: shard tasks with one spec; the engine is rebuilt once.  Several
#: generations may be cached at a time — a runtime A/B-serving two model
#: versions alternates specs, and rebuilding on every alternation would
#: defeat the cache — bounded by :data:`MAX_CACHED_ENGINES` and by the byte
#: budget below.
_WORKER_ENGINES: "OrderedDict[SharedEngineSpec, TopNEngine]" = OrderedDict()

#: How many engine generations one worker keeps rebuilt at a time.  Two
#: covers A/B serving; the headroom absorbs a swap racing a serving burst.
MAX_CACHED_ENGINES = 4

#: Environment knob for the worker-side attachment byte budget (in MiB).
#: Read inside the worker on every shard task, so the value the *publisher*
#: process exports before building the pool governs its workers (fork and
#: spawn both inherit the environment).  Unset or non-positive: no budget —
#: mapped memory is bounded only by :data:`MAX_CACHED_ENGINES`.
ATTACHMENT_BUDGET_ENV = "REPRO_ATTACHMENT_BUDGET_MB"


def attachment_budget_bytes() -> Optional[int]:
    """The configured worker attachment budget in bytes, or ``None``."""
    raw = os.environ.get(ATTACHMENT_BUDGET_ENV)
    if not raw:
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        return None
    if megabytes <= 0:
        return None
    return int(megabytes * 1024 * 1024)


def _engine_segment_names() -> List[str]:
    """Segment names the cached engines still view (must stay mapped)."""
    return [
        name for spec in _WORKER_ENGINES for name in spec.segment_names()
    ]


def _evict_engine_viewing(name: str) -> None:
    """Drop every cached engine that views segment ``name`` (budget eviction).

    Dropping the engine releases its ndarray views, after which the holder
    no longer claims the segment and :func:`close_stale_attachments` may
    close the mapping safely.
    """
    for spec in [s for s in _WORKER_ENGINES if name in s.segment_names()]:
        del _WORKER_ENGINES[spec]


def _prune_unlinked_engines() -> None:
    """Drop cached engines whose publisher has unlinked their segments.

    The common deployment is a refit loop with ONE live generation: without
    this, each worker would retain engines (and their mapped pages — unlink
    removes the name, not existing maps) for the last
    :data:`MAX_CACHED_ENGINES` generations, multiplying steady-state worker
    memory for no benefit.  A generation still published — or retired but
    pinned by an in-flight session (A/B serving) — keeps its segment names
    and is kept; one whose names are gone can never be served again.
    """
    for spec in list(_WORKER_ENGINES):
        if any(not spec_is_live(array_spec) for array_spec in spec.array_specs()):
            del _WORKER_ENGINES[spec]


register_attachment_holder(_engine_segment_names, evict=_evict_engine_viewing)


def attach_engine(
    spec: SharedEngineSpec, max_bytes: Optional[int] = None
) -> TopNEngine:
    """Rebuild (or fetch the cached) engine for ``spec`` inside a worker.

    A spec the worker has not seen marks a generation reaching it for the
    first time: the least recently served engines beyond
    :data:`MAX_CACHED_ENGINES` are dropped, then attachments no cache views
    are closed — with ``max_bytes`` additionally evicting least-recently
    used generation mappings until the worker's mapped memory fits the
    budget (the new spec itself is never evicted).  So the worker's mapped
    memory tracks the models it actively serves rather than every model it
    ever served.
    """
    engine = _WORKER_ENGINES.get(spec)
    if engine is None:
        # A new generation reaching this worker is the swap moment: first
        # drop generations the publisher has since unlinked (their mapped
        # pages are released by close_stale_attachments below), then bound
        # the survivors by count.
        _prune_unlinked_engines()
        while len(_WORKER_ENGINES) >= MAX_CACHED_ENGINES:
            _WORKER_ENGINES.popitem(last=False)
        train_matrix = InteractionMatrix.from_validated_csr(attach_shared_csr(spec.seen))
        factors = FactorModel(
            attach_shared_array(spec.user_factors),
            attach_shared_array(spec.item_factors),
        )
        engine = TopNEngine(
            train_matrix,
            factors=factors,
            chunk_size=spec.chunk_size,
            dtype=spec.dtype,
        )
        _WORKER_ENGINES[spec] = engine
        close_stale_attachments(set(spec.segment_names()), max_bytes=max_bytes)
    else:
        _WORKER_ENGINES.move_to_end(spec)
        # A cache hit serves from the rebuilt engine without re-attaching;
        # refresh its segments' recency too, or the hottest generation's
        # mappings would be the byte budget's first eviction victims.
        touch_attachments(spec.segment_names())
    return engine


def _topn_shard(
    spec: SharedEngineSpec,
    users: List[int],
    n_items: int,
    exclude_seen: bool,
    return_scores: bool = False,
):
    """Serve one user shard from shared-memory descriptors (worker side).

    Returns the shard's flat :class:`~repro.serving.results.TopNResult`
    (score block embedded when ``return_scores``), which pickles back to the
    caller as three contiguous arrays instead of ``O(shard)`` row objects.
    """
    return attach_engine(spec, max_bytes=attachment_budget_bytes()).topn(
        users, n_items=n_items, exclude_seen=exclude_seen, with_scores=return_scores
    )


def _rank_scored_shard(
    spec: SharedEngineSpec,
    scores: SharedArraySpec,
    seen: Optional[SharedCsrSpec],
    start: int,
    stop: int,
    n_items: int,
    return_scores: bool = False,
):
    """Rank rows ``[start, stop)`` of a published score block (worker side).

    Used by the runtime's cold-start path: the fold-in scores are published
    once per call and each shard ranks its row slice.  Per-row ranking is
    row-independent, so the slice's rankings are bitwise the rankings the
    single-process :meth:`TopNEngine.rank_scored` produces for those rows.
    Returns the shard's flat :class:`~repro.serving.results.TopNResult`
    (score block embedded when ``return_scores``).
    """
    engine = attach_engine(spec, max_bytes=attachment_budget_bytes())
    score_rows = attach_shared_array(scores)[start:stop]
    seen_rows = attach_shared_csr(seen)[start:stop] if seen is not None else None
    ranked = engine.rank_scored(
        score_rows, n_items=n_items, seen=seen_rows, return_scores=return_scores
    )
    if return_scores:
        # rank_scored returns a (result, score-views) pair; the flat result
        # already embeds the score block, so ship only it across processes.
        ranked = ranked[0]
    # The score/seen segments are per *call*, not per model version: drop
    # their attachments now (the views above die with this frame) or a
    # cold-start service would grow one mapped block per call until the next
    # generation swap.  Segments any worker-side cache still views — this
    # engine, other cached engines, the training plan sides — are protected
    # by the registered attachment holders.
    del score_rows, seen_rows
    close_stale_attachments(set(spec.segment_names()))
    return ranked
