"""Sharded batch serving: fan user chunks across an executor.

The nightly job of Section VIII serves every client.  On one machine the
chunked :class:`~repro.serving.engine.TopNEngine` already removes the
per-user Python overhead; this module adds the scale-out axis, splitting the
user list into shards and mapping them over an executor resolved through the
:mod:`repro.parallel.scheduler` registry — by name (``"thread"`` for
BLAS-bound scoring, ``"process"`` when the model is cheap to pickle,
``"serial"`` for tests) or as a prebuilt instance.

Executors return results in submission order, so the output is order-stable:
the list of rankings is aligned with the input users no matter which
executor ran the shards — the test-suite asserts all three agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.parallel import ShardScheduler
from repro.serving.engine import TopNEngine
from repro.utils.validation import check_positive_int


def _serve_shard(
    engine: TopNEngine, users: List[int], n_items: int, exclude_seen: bool
) -> List[np.ndarray]:
    """Module-level shard worker (picklable for :class:`ProcessExecutor`)."""
    return engine.recommend_batch(users, n_items=n_items, exclude_seen=exclude_seen)


@dataclass
class BatchServingResult:
    """Outcome of a sharded serving run.

    Attributes
    ----------
    users:
        The users served, in input order.
    rankings:
        One ranked item array per user, aligned with ``users``.
    n_shards:
        Number of shards the users were split into.
    """

    users: List[int]
    rankings: List[np.ndarray]
    n_shards: int

    def as_dict(self) -> dict[int, np.ndarray]:
        """Mapping form (user -> ranked items)."""
        return dict(zip(self.users, self.rankings))


def serve_sharded(
    engine: TopNEngine,
    users: Sequence[int],
    n_items: int = 10,
    exclude_seen: bool = True,
    executor=None,
    shard_size: Optional[int] = None,
) -> BatchServingResult:
    """Serve top-N lists for many users, sharded across an executor.

    Parameters
    ----------
    engine:
        The scoring engine; shipped to workers, so it must be picklable
        when a :class:`~repro.parallel.ProcessExecutor` is used (it is —
        the engine holds only arrays and sparse matrices).
    users:
        Users to serve, any order, duplicates allowed.
    n_items:
        List length per user.
    exclude_seen:
        Mask training positives (the deployment default).
    executor:
        A name from the :mod:`repro.parallel.scheduler` registry
        (``"serial"``, ``"thread"``, ``"process"``) — the executor is then
        built for this call and shut down afterwards — or any prebuilt
        instance with ``starmap`` (the caller keeps its lifecycle).
        Defaults to ``"serial"``.
    shard_size:
        Users per shard; defaults to the engine's chunk size, so each
        shard is one BLAS call in the worker.
    """
    user_list = [int(user) for user in users]
    if shard_size is None:
        shard_size = engine.chunk_size
    check_positive_int(shard_size, "shard_size")

    shards = [user_list[start : start + shard_size] for start in range(0, len(user_list), shard_size)]
    # The scheduler owns a name-built executor (shut down on exit) and
    # borrows an instance (left running for its owner).
    with ShardScheduler("serial" if executor is None else executor) as scheduler:
        shard_results = scheduler.starmap(
            _serve_shard, [(engine, shard, n_items, exclude_seen) for shard in shards]
        )
    rankings: List[np.ndarray] = []
    for result in shard_results:
        rankings.extend(result)
    return BatchServingResult(users=user_list, rankings=rankings, n_shards=len(shards))
