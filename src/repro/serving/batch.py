"""Sharded batch serving: fan user chunks across an executor.

The nightly job of Section VIII serves every client.  On one machine the
chunked :class:`~repro.serving.engine.TopNEngine` already removes the
per-user Python overhead; this module adds the scale-out axis, splitting the
user list into shards and mapping them over an executor resolved through the
:mod:`repro.parallel.scheduler` registry — by name (``"thread"`` for
BLAS-bound scoring, ``"process"`` for GIL-free workers, ``"serial"`` for
tests) or as a prebuilt instance.

When the executor is a
:class:`~repro.parallel.shared_memory.SharedMemoryProcessExecutor` (the
``"process"`` registry entry) and the engine runs on the factor path, the
engine is **published, not pickled**: its factor matrices and seen-mask go
to shared memory once for the whole call and each shard task carries only a
:class:`~repro.serving.shared.SharedEngineSpec` — no factor bytes per task.
Rankings are unchanged; the workers run the same engine kernels over the
same bytes.

Executors return results in submission order, so the output is order-stable:
the list of rankings is aligned with the input users no matter which
executor ran the shards — the test-suite asserts all three agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel import ShardScheduler, supports_publication
from repro.serving.engine import TopNEngine
from repro.serving.results import TopNResult
from repro.serving.shared import _topn_shard, publish_engine, unpublish_engine
from repro.utils.validation import check_positive_int


def merge_request_lists(
    lists: Sequence[Sequence[Any]],
) -> Tuple[List[Any], List[Tuple[int, int]]]:
    """Flatten per-request item lists into one batch, remembering each span.

    The gather half of micro-batching: many small requests become one merged
    list the serving engine can process in a single sharded call, plus one
    ``(start, stop)`` span per request for :func:`scatter_results` to slice
    the merged output back apart.  Duplicates across requests are fine —
    each request keeps its own span, so two requests asking for the same
    user each receive that user's ranking.
    """
    merged: List[Any] = []
    spans: List[Tuple[int, int]] = []
    for request in lists:
        start = len(merged)
        merged.extend(request)
        spans.append((start, len(merged)))
    return merged, spans


def scatter_results(
    results: Sequence[Any], spans: Sequence[Tuple[int, int]]
) -> List[List[Any]]:
    """Slice a merged batch's per-row results back into per-request lists.

    Inverse of :func:`merge_request_lists`: ``results`` must be aligned with
    the merged list (one entry per merged row, in order), which every
    serving path guarantees — executors return shard results in submission
    order.  Flat :class:`~repro.serving.results.TopNResult` batches scatter
    as zero-copy block views — one array slice per request instead of a
    Python list copy per row.
    """
    if spans and len(results) < spans[-1][1]:
        raise ValueError(
            f"merged results cover {len(results)} rows but the request spans "
            f"extend to {spans[-1][1]}"
        )
    if isinstance(results, TopNResult):
        return [results[start:stop] for start, stop in spans]
    return [list(results[start:stop]) for start, stop in spans]


def _serve_shard(
    engine: TopNEngine,
    users: List[int],
    n_items: int,
    exclude_seen: bool,
    return_scores: bool = False,
) -> TopNResult:
    """Module-level shard worker (picklable for :class:`ProcessExecutor`).

    Returns the shard's flat :class:`TopNResult`; with ``return_scores``
    the result's score block rides along, so the shard pickles as three
    contiguous arrays either way and callers flatten shards with
    :meth:`TopNResult.concat`.
    """
    return engine.topn(
        users, n_items=n_items, exclude_seen=exclude_seen, with_scores=return_scores
    )


@dataclass
class BatchServingResult:
    """Outcome of a sharded serving run.

    Attributes
    ----------
    users:
        The users served, in input order.
    rankings:
        Flat :class:`~repro.serving.results.TopNResult` aligned with
        ``users`` (iterates and indexes like the historical list of
        per-user arrays).
    n_shards:
        Number of shards the users were split into.
    """

    users: List[int]
    rankings: TopNResult
    n_shards: int

    def as_dict(self) -> dict[int, np.ndarray]:
        """Mapping form (user -> ranked items)."""
        return dict(zip(self.users, self.rankings))


def serve_sharded(
    engine: TopNEngine,
    users: Sequence[int],
    n_items: int = 10,
    exclude_seen: bool = True,
    executor=None,
    shard_size: Optional[int] = None,
) -> BatchServingResult:
    """Serve top-N lists for many users, sharded across an executor.

    Parameters
    ----------
    engine:
        The scoring engine.  Factor-path engines served on a
        publication-capable executor (the shared-memory process pool, the
        cluster executor) are published once per call — descriptors per
        task, zero factor bytes; on any other process executor — or for
        model-path engines — the engine is pickled per shard, so it must be
        picklable there.
    users:
        Users to serve, any order, duplicates allowed.
    n_items:
        List length per user.
    exclude_seen:
        Mask training positives (the deployment default).
    executor:
        A name from the :mod:`repro.parallel.scheduler` registry
        (``"serial"``, ``"thread"``, ``"process"``, ``"cluster"``) — the
        executor is then built for this call and shut down afterwards — or
        any prebuilt
        instance with ``starmap`` (the caller keeps its lifecycle).
        Defaults to ``"serial"``.
    shard_size:
        Users per shard; defaults to the engine's chunk size, so each
        shard is one BLAS call in the worker.
    """
    user_list = [int(user) for user in users]
    if shard_size is None:
        shard_size = engine.chunk_size
    check_positive_int(shard_size, "shard_size")

    shards = [user_list[start : start + shard_size] for start in range(0, len(user_list), shard_size)]
    # The scheduler owns a name-built executor (shut down on exit) and
    # borrows an instance (left running for its owner).
    with ShardScheduler("serial" if executor is None else executor) as scheduler:
        live = scheduler.executor if shards else None
        if live is not None and supports_publication(live) and engine.factors is not None:
            # Descriptor path: one publication per call, no factor bytes per
            # task.  Unpublished in ``finally`` so a borrowed executor is
            # left exactly as it was handed in.
            spec = publish_engine(live, engine)
            try:
                shard_results = scheduler.starmap(
                    _topn_shard,
                    [(spec, shard, n_items, exclude_seen) for shard in shards],
                )
            finally:
                unpublish_engine(live, spec)
        else:
            shard_results = scheduler.starmap(
                _serve_shard, [(engine, shard, n_items, exclude_seen) for shard in shards]
            )
    # Shards of one call share a width, so flattening is one vstack of the
    # flat blocks — no per-user list rebuilding.
    rankings = TopNResult.concat(shard_results)
    return BatchServingResult(users=user_list, rankings=rankings, n_shards=len(shards))
