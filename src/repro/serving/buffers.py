"""Reusable score-block buffers for the serving hot path.

Every chunk the :class:`~repro.serving.engine.TopNEngine` scores needs one
dense ``(chunk, n_items)`` block.  Allocating it fresh per chunk means the
nightly batch pays an allocator round-trip and a page-fault sweep per BLAS
call — pure overhead once the block size stabilises, which it does
immediately (every chunk of a call is the same shape, and successive calls
reuse the same catalogue width).  :class:`ScoreBufferPool` keeps released
blocks on a small free list keyed by ``(n_columns, dtype)`` and hands them
back out, so steady-state serving performs **zero** score-block allocations
— the pool's :meth:`~ScoreBufferPool.stats` counter proves it, and the
benchmark suite asserts it.

Each engine owns one pool.  In-process that makes the pool per-thread in
the common case (one engine per serving thread) while still being safe for
shared engines: the free list is lock-guarded, and the pipelined scoring
path deliberately *takes* a buffer on the prefetch thread and *releases* it
on the caller thread.  Under the process executor the pool is worker-local
for free — each worker rebuilds (and caches) its own engine from the shared
descriptors, pool included.

The companion chunk-size autotuner caps ``chunk × n_items × itemsize`` at a
configurable byte budget (:data:`BUFFER_BUDGET_ENV`, default
:data:`DEFAULT_BUFFER_BUDGET_MB` MiB), so a 100k-item catalogue
automatically serves in smaller row chunks instead of allocating
multi-gigabyte blocks.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "BUFFER_BUDGET_ENV",
    "DEFAULT_BUFFER_BUDGET_MB",
    "BufferPoolStats",
    "ScoreBufferPool",
    "score_buffer_budget_bytes",
]

#: Environment knob for the score-buffer byte budget, in MiB.  Read at
#: engine construction, so the publisher's environment governs worker-side
#: engines too (workers inherit it).
BUFFER_BUDGET_ENV = "REPRO_SCORE_BUFFER_BUDGET_MB"

#: Default budget: a float64 chunk against a 100k-item catalogue autotunes
#: to ~160 rows instead of the 800 MB block a 1024-row chunk would need.
DEFAULT_BUFFER_BUDGET_MB = 128.0


def score_buffer_budget_bytes(budget_mb: Optional[float] = None) -> int:
    """Resolve the score-buffer budget to bytes.

    Priority: explicit ``budget_mb`` argument, then :data:`BUFFER_BUDGET_ENV`,
    then :data:`DEFAULT_BUFFER_BUDGET_MB`.  Non-numeric or non-positive
    values fall back to the default.
    """
    if budget_mb is None:
        raw = os.environ.get(BUFFER_BUDGET_ENV)
        if raw:
            try:
                budget_mb = float(raw)
            except ValueError:
                budget_mb = None
    if budget_mb is None or budget_mb <= 0:
        budget_mb = DEFAULT_BUFFER_BUDGET_MB
    return int(float(budget_mb) * 1024 * 1024)


@dataclass(frozen=True)
class BufferPoolStats:
    """Counters of one :class:`ScoreBufferPool`.

    ``allocations`` not growing across serving calls is the zero-allocation
    property the hot path claims; ``reuses`` growing instead proves the
    blocks actually cycle through the free list.
    """

    allocations: int
    reuses: int
    outstanding: int
    bytes_allocated: int
    cached_blocks: int


class ScoreBufferPool:
    """Lock-guarded free list of dense score blocks, keyed by ``(cols, dtype)``.

    :meth:`take` returns a C-contiguous ``(rows, cols)`` view into a cached
    (or freshly allocated) block; :meth:`release` returns the block for
    reuse.  Take and release may happen on different threads — the
    pipelined engine scores chunk ``k+1`` on a prefetch thread while the
    caller consumes chunk ``k`` — so the free list is guarded rather than
    thread-local.  At most :attr:`max_cached` blocks are kept per key
    (pipelining needs two in flight); extras are dropped to the allocator.
    """

    def __init__(self, max_cached: int = 4) -> None:
        self.max_cached = int(max_cached)
        self._lock = threading.Lock()
        self._free: Dict[Tuple[int, str], List[np.ndarray]] = {}
        self._allocations = 0
        self._reuses = 0
        self._outstanding = 0
        self._bytes_allocated = 0

    def take(self, rows: int, cols: int, dtype) -> np.ndarray:
        """A writable C-contiguous ``(rows, cols)`` block of ``dtype``.

        Reuses any cached block of the same key with at least ``rows``
        capacity (the last chunk of a call is shorter; it reuses the full
        block through a leading-row view).
        """
        rows, cols = int(rows), int(cols)
        dtype = np.dtype(dtype)
        key = (cols, dtype.str)
        base = None
        with self._lock:
            candidates = self._free.get(key)
            if candidates:
                for position, block in enumerate(candidates):
                    if block.shape[0] >= rows:
                        base = candidates.pop(position)
                        self._reuses += 1
                        break
            if base is None:
                self._allocations += 1
                self._bytes_allocated += rows * cols * dtype.itemsize
            self._outstanding += 1
        if base is None:
            base = np.empty((rows, cols), dtype=dtype)
        return base[:rows]

    def release(self, buffer: np.ndarray) -> None:
        """Return a block obtained from :meth:`take` to the free list."""
        base = buffer.base if buffer.base is not None else buffer
        base = np.asarray(base)
        if base.ndim != 2:
            raise ValueError("released buffer must be a 2-D score block")
        key = (base.shape[1], base.dtype.str)
        with self._lock:
            self._outstanding = max(0, self._outstanding - 1)
            candidates = self._free.setdefault(key, [])
            candidates.append(base)
            if len(candidates) > self.max_cached:
                candidates.pop(0)

    def stats(self) -> BufferPoolStats:
        """A consistent snapshot of the pool's counters."""
        with self._lock:
            return BufferPoolStats(
                allocations=self._allocations,
                reuses=self._reuses,
                outstanding=self._outstanding,
                bytes_allocated=self._bytes_allocated,
                cached_blocks=sum(len(blocks) for blocks in self._free.values()),
            )

    def clear(self) -> None:
        """Drop every cached block (counters are preserved)."""
        with self._lock:
            self._free.clear()

    def __reduce__(self):
        # Engines pickle to process-pool workers; buffers and lock state do
        # not travel — each process warms its own pool.
        return (type(self), (self.max_cached,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snapshot = self.stats()
        return (
            f"ScoreBufferPool(allocations={snapshot.allocations}, "
            f"reuses={snapshot.reuses}, cached={snapshot.cached_blocks})"
        )
