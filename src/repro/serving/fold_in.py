"""Fold-in of unseen users: cold-start serving without refitting.

A deployed nightly batch (Section VIII) constantly meets clients that were
not in the last training run.  Refitting the whole model per new client is
out of the question; the standard factor-model answer is *fold-in*: hold the
fitted item factors fixed and solve the single-user subproblem for the new
interaction vector.

For the OCuLaR objective that subproblem is convex (the positive-example
term ``-log(1 - exp(-<f, v_i>))`` is convex in ``f`` and the unknown and
penalty terms are linear/quadratic), so a few projected-gradient sweeps with
Armijo backtracking — the exact machinery of the training backends — reach
the block optimum.  The sweeps run through the
:class:`~repro.core.backends.Backend` abstraction, so fold-in automatically
benefits from the vectorised kernel and folds whole batches of new users at
once.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.backends import Backend, BackendLease, SweepSide
from repro.core.factors import FactorModel
from repro.data.interactions import InteractionMatrix
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.utils.validation import (
    check_non_negative_float,
    check_positive_int,
    check_unit_interval_open,
)

InteractionsLike = Union[
    sp.spmatrix, InteractionMatrix, Sequence[Sequence[int]], np.ndarray
]


def _interactions_to_csr(
    interactions: InteractionsLike, n_items: int, entity: str = "item"
) -> sp.csr_matrix:
    """Normalise the accepted interaction forms to a binary CSR of width ``n_items``.

    ``entity`` names what the columns are in error messages — ``"item"`` for
    the user fold-in, ``"user"`` for the symmetric item fold-in.
    """
    if isinstance(interactions, InteractionMatrix):
        csr = interactions.csr().copy()
    elif sp.issparse(interactions):
        csr = sp.csr_matrix(interactions, dtype=np.float64)
    elif isinstance(interactions, np.ndarray) and interactions.ndim == 2:
        # A dense 0/1 matrix of shape (m, n_items), like the sparse form —
        # must not be mistaken for per-user lists of item indices.
        csr = sp.csr_matrix(np.asarray(interactions, dtype=np.float64))
    else:
        rows: list[int] = []
        cols: list[int] = []
        item_lists = list(interactions)
        for row, items in enumerate(item_lists):
            for item in np.asarray(items, dtype=np.int64).ravel():
                item = int(item)
                if not 0 <= item < n_items:
                    raise DataError(
                        f"interaction {entity} index {item} out of range [0, {n_items})"
                    )
                rows.append(row)
                cols.append(item)
        csr = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(len(item_lists), n_items)
        )
    if csr.shape[1] != n_items:
        raise DataError(
            f"interaction vectors have {csr.shape[1]} {entity}s, the model has {n_items}"
        )
    if csr.nnz and (csr.indices.min() < 0 or csr.indices.max() >= n_items):
        raise DataError(f"interaction {entity} indices out of range")
    csr.data[:] = 1.0
    csr.sum_duplicates()
    csr.data[:] = 1.0
    return csr


#: LRU cache of prebuilt fold-in sweep sides.  A serving process that folds
#: many small batches against the same item factors frequently re-presents
#: identical interaction batches (retries, polling clients, fixed evaluation
#: cohorts); rebuilding the ``SweepSide`` costs O(nnz) per call, so identical
#: batches reuse the prior plan instead.  Keyed on a content digest of the
#: batch's CSR arrays plus the training dtype, so any change to the
#: interactions (or a float32 vs float64 model) misses cleanly.
#:
#: The cache is shared by every thread of a serving runtime, so all access
#: goes through :data:`_SIDE_CACHE_LOCK` — a plain dict-based LRU corrupts
#: (lost inserts, ``move_to_end`` on evicted keys) when concurrent
#: ``fold_in_users`` calls race on it.
_SIDE_CACHE: "OrderedDict[Tuple, SweepSide]" = OrderedDict()
_SIDE_CACHE_SIZE = 16
_SIDE_CACHE_LOCK = threading.Lock()


def _side_cache_key(interactions: sp.csr_matrix, dtype: np.dtype) -> Tuple:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(interactions.indptr).tobytes())
    digest.update(np.ascontiguousarray(interactions.indices).tobytes())
    digest.update(np.ascontiguousarray(interactions.data).tobytes())
    return (tuple(interactions.shape), np.dtype(dtype).str, digest.hexdigest())


def _cached_sweep_side(interactions: sp.csr_matrix, dtype: np.dtype) -> SweepSide:
    """Return the sweep side for a fold-in batch, reusing identical batches.

    Thread-safe: the digest is computed outside the lock (pure function of
    the inputs), the lookup/insert/evict critical sections hold it.  Two
    threads presenting the same new batch may both build a side; the second
    insert simply wins — both sides are equivalent, so correctness is
    unaffected and the build happens outside the lock.

    Cached sides also carry a warm
    :class:`~repro.core.backends.workspace.SweepWorkspaceStore`: repeated
    fold-ins of an identical batch (the cold-start retry pattern) reuse the
    pooled sweep arenas, so the per-sweep allocation cost is paid once per
    cached side, not once per request.  The store hands arenas out
    exclusively, so concurrent fold-ins through one cached side — or a
    fold-in racing a warm refit — stay isolated.
    """
    key = _side_cache_key(interactions, dtype)
    with _SIDE_CACHE_LOCK:
        side = _SIDE_CACHE.get(key)
        if side is not None:
            _SIDE_CACHE.move_to_end(key)
            return side
    # Build from a private copy: SweepSide.build may alias the caller's
    # CSR buffers, and a cached side must stay frozen at the digested
    # content even if the caller later mutates their matrix in place.
    side = SweepSide.build(interactions.copy(), dtype=dtype)
    with _SIDE_CACHE_LOCK:
        _SIDE_CACHE[key] = side
        while len(_SIDE_CACHE) > _SIDE_CACHE_SIZE:
            _SIDE_CACHE.popitem(last=False)
    return side


def clear_fold_in_plan_cache() -> None:
    """Drop every cached fold-in sweep side (e.g. between unrelated models)."""
    with _SIDE_CACHE_LOCK:
        _SIDE_CACHE.clear()


def fold_in_factors(
    item_factors: np.ndarray,
    interactions: sp.csr_matrix,
    regularization: float,
    backend: Union[Backend, str] = "vectorized",
    n_sweeps: int = 30,
    tolerance: float = 1e-8,
    sigma: float = 0.1,
    beta: float = 0.5,
    max_backtracks: int = 20,
    init: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Solve the fixed-item-factor subproblem for a batch of new users.

    Parameters
    ----------
    item_factors:
        Fitted item affiliations, shape ``(n_items, K)`` — held fixed.
    interactions:
        Binary CSR of the new users' positives, shape ``(m, n_items)``.
    regularization:
        The L2 penalty ``lambda`` the model was trained with.
    backend:
        Sweep backend name or instance (same registry as training).
    n_sweeps:
        Maximum projected-gradient steps; each sweep updates all ``m`` rows
        at once.  The subproblem is convex, so a few dozen suffice.
    tolerance:
        Early-stop threshold on the relative factor change between sweeps.
    sigma, beta, max_backtracks:
        Armijo line-search constants, as in training.
    init:
        Optional strictly positive warm start, shape ``(m, K)``.  Defaults
        to the scaled all-ones point (the gradient ratio diverges at exactly
        zero, so the start must be interior).

    Returns
    -------
    np.ndarray
        Non-negative folded-in user factors, shape ``(m, K)``.
    """
    # Preserve a float32 model's precision end to end; coerce anything that
    # is not already a supported float dtype to float64.
    item_factors = np.asarray(item_factors)
    if item_factors.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        item_factors = np.asarray(item_factors, dtype=float)
    if item_factors.ndim != 2:
        raise ConfigurationError("item_factors must be a 2-D array")
    regularization = check_non_negative_float(regularization, "regularization")
    check_positive_int(n_sweeps, "n_sweeps")
    check_unit_interval_open(sigma, "sigma")
    check_unit_interval_open(beta, "beta")
    check_positive_int(max_backtracks, "max_backtracks")
    # A backend built here from a name is owned by this call; its pools and
    # shared memory (process executor) must not outlive the fold-in.  An
    # instance — e.g. a runtime's warm backend — is borrowed and survives.
    lease = BackendLease(backend)
    backend = lease.backend

    n_items, n_coclusters = item_factors.shape
    interactions = sp.csr_matrix(interactions)
    if interactions.shape[1] != n_items:
        raise ConfigurationError(
            f"interactions have {interactions.shape[1]} columns, expected {n_items}"
        )
    m = interactions.shape[0]
    if m == 0:
        return np.zeros((0, n_coclusters), dtype=item_factors.dtype)

    if init is None:
        # Start at a small interior point.  Exactly zero is infeasible (the
        # positive-term gradient ratio diverges there), and a *large* start is
        # dangerous too: the first Armijo candidate can land on exactly zero,
        # which is an absorbing artifact of the clamped objective.  A start
        # well below the typical fitted factor magnitude converges cleanly.
        mean_item = float(item_factors.mean()) if item_factors.size else 0.0
        scale = 1.0 / max(n_coclusters * max(mean_item, 1e-12), 1e-6)
        factors = np.full(
            (m, n_coclusters), min(max(scale, 1e-3), 0.1), dtype=item_factors.dtype
        )
    else:
        factors = np.array(init, dtype=item_factors.dtype, copy=True)
        if factors.shape != (m, n_coclusters):
            raise ConfigurationError(
                f"init must have shape ({m}, {n_coclusters}), got {factors.shape}"
            )
        if (factors <= 0).all(axis=1).any():
            raise ConfigurationError("init must give every user an interior (positive) start")

    # The sweep structure of the fixed interaction matrix is static across
    # the convex sweeps — and across *calls* presenting the same batch, so
    # it comes from the keyed plan cache rather than being rebuilt.
    side = _cached_sweep_side(interactions, factors.dtype)
    try:
        for _ in range(n_sweeps):
            previous = factors
            factors, _ = backend.sweep(
                None,
                factors,
                item_factors,
                regularization=regularization,
                sigma=sigma,
                beta=beta,
                max_backtracks=max_backtracks,
                plan=side,
            )
            change = np.linalg.norm(factors - previous)
            reference = max(np.linalg.norm(previous), 1.0)
            if change / reference < tolerance:
                break
    finally:
        lease.release()
    return factors


def fold_in_users(
    model,
    interactions: InteractionsLike,
    n_sweeps: int = 30,
    tolerance: float = 1e-8,
    init: Optional[np.ndarray] = None,
    backend: Optional[Union[Backend, str]] = None,
) -> np.ndarray:
    """Fold a batch of unseen users into a fitted OCuLaR-family model.

    Reads the regularisation, line-search constants and backend off the
    fitted model so the subproblem matches the one training solved.

    Parameters
    ----------
    model:
        A fitted model exposing ``factors_`` (OCuLaR, R-OCuLaR, ...).
    interactions:
        The new users' positives: a list of item-index sequences, a sparse
        matrix of shape ``(m, n_items)``, or an :class:`InteractionMatrix`.
    n_sweeps, tolerance, init:
        See :func:`fold_in_factors`.
    backend:
        Optional override of the model's configured backend — a borrowed
        instance (e.g. a runtime's warm pool) or a name.  All backends
        produce bit-identical sweeps, so the override changes where the
        work runs, never the folded factors.

    Returns
    -------
    np.ndarray
        Folded user factors, shape ``(m, K)``.
    """
    factors = getattr(model, "factors_", None)
    if not isinstance(factors, FactorModel):
        raise NotFittedError("fold_in_users requires a fitted factor model")
    csr = _interactions_to_csr(interactions, factors.n_items)
    return fold_in_factors(
        factors.item_factors,
        csr,
        regularization=getattr(model, "regularization", 0.0),
        backend=getattr(model, "backend", "vectorized") if backend is None else backend,
        n_sweeps=n_sweeps,
        tolerance=tolerance,
        sigma=getattr(model, "sigma", 0.1),
        beta=getattr(model, "beta", 0.5),
        max_backtracks=getattr(model, "max_backtracks", 20),
        init=init,
    )


def fold_in_user(
    model,
    items: Sequence[int],
    n_sweeps: int = 30,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Fold a single unseen user in; returns their factor vector, shape ``(K,)``."""
    return fold_in_users(model, [list(items)], n_sweeps=n_sweeps, tolerance=tolerance)[0]


def fold_in_items(
    model,
    interactions: InteractionsLike,
    n_sweeps: int = 30,
    tolerance: float = 1e-8,
    init: Optional[np.ndarray] = None,
    backend: Optional[Union[Backend, str]] = None,
) -> np.ndarray:
    """Fold a batch of unseen *items* into a fitted OCuLaR-family model.

    The mirror of :func:`fold_in_users`: hold the fitted **user** factors
    fixed and solve the per-item convex subproblem for each new item's
    interaction vector.  The objective is symmetric in the two factor blocks
    — ``-log(1 - exp(-<f_i, f_u>))`` is the same function of whichever side
    is free — so the exact sweep machinery applies with the roles swapped.

    Parameters
    ----------
    model:
        A fitted model exposing ``factors_``.
    interactions:
        The new items' positives, *item-major*: a list of user-index
        sequences (one per new item), a sparse matrix of shape
        ``(m, n_users)``, or a dense 0/1 array of that shape.
    n_sweeps, tolerance, init:
        See :func:`fold_in_factors`.
    backend:
        Optional backend override, as in :func:`fold_in_users`.

    Returns
    -------
    np.ndarray
        Folded item factors, shape ``(m, K)``.
    """
    factors = getattr(model, "factors_", None)
    if not isinstance(factors, FactorModel):
        raise NotFittedError("fold_in_items requires a fitted factor model")
    csr = _interactions_to_csr(interactions, factors.n_users, entity="user")
    return fold_in_factors(
        factors.user_factors,
        csr,
        regularization=getattr(model, "regularization", 0.0),
        backend=getattr(model, "backend", "vectorized") if backend is None else backend,
        n_sweeps=n_sweeps,
        tolerance=tolerance,
        sigma=getattr(model, "sigma", 0.1),
        beta=getattr(model, "beta", 0.5),
        max_backtracks=getattr(model, "max_backtracks", 20),
        init=init,
    )


def extend_factors(
    model,
    matrix,
    backend: Optional[Union[Backend, str]] = None,
    n_sweeps: int = 30,
    tolerance: float = 1e-8,
    interior: float = 0.01,
) -> FactorModel:
    """Extend a fitted model's factors to a grown interaction matrix.

    The warm-start seed for an incremental refit: existing rows carry the
    previous generation's factors, new **user** rows are folded in against
    the old item catalogue (their interactions restricted to the old
    columns), and new **item** rows are folded in against the *extended*
    user factors — so late items see their early adopters, including
    just-folded new users.  The result is a feasible (non-negative) point of
    the training program on the grown matrix, ready for
    ``fit(..., initial_factors=...)``.

    Parameters
    ----------
    model:
        A fitted model exposing ``factors_`` plus the solver constants
        (``regularization``, ``sigma``, ``beta``, ``max_backtracks``).
    matrix:
        The grown corpus — an :class:`InteractionMatrix` (e.g. from
        :meth:`~repro.data.interactions.InteractionMatrix.extended_with`) or
        CSR whose shape is at least the fitted one in both dimensions.
    backend:
        Optional backend override for the fold-in sweeps (a runtime's warm
        pool, typically).
    n_sweeps, tolerance:
        Fold-in sweep budget, as in :func:`fold_in_factors`.
    interior:
        Exact zeros in the seed are lifted to ``interior`` times the mean
        positive entry of their factor block.  A converged generation is
        mostly exact zeros, and zero is an absorbing artifact of the clamped
        objective — the projected sweeps cannot regrow a coordinate whose
        (clamped) gradient is non-negative at the boundary, so restarting
        from the previous factors verbatim stalls at a partially absorbed
        critical point well above what a cold fit reaches.  A tiny interior
        lift restores trainability while staying within rounding distance of
        the previous generation.  Set to ``0.0`` for the verbatim extension
        (diagnostics that compare objectives, not warm starts).

    Returns
    -------
    FactorModel
        Factors of the grown shape ``(matrix.n_users, K)`` / ``(matrix.n_items, K)``.
    """
    factors = getattr(model, "factors_", None)
    if not isinstance(factors, FactorModel):
        raise NotFittedError("extend_factors requires a fitted factor model")
    interior = check_non_negative_float(interior, "interior")
    csr = matrix.csr() if isinstance(matrix, InteractionMatrix) else sp.csr_matrix(matrix)
    n_users, n_items = csr.shape
    if n_users < factors.n_users or n_items < factors.n_items:
        raise ConfigurationError(
            f"extend_factors needs a matrix at least as large as the fitted one; "
            f"got ({n_users}, {n_items}) vs fitted ({factors.n_users}, {factors.n_items})"
        )
    dtype = factors.user_factors.dtype
    n_coclusters = factors.user_factors.shape[1]

    user_out = np.zeros((n_users, n_coclusters), dtype=dtype)
    user_out[: factors.n_users] = factors.user_factors
    if n_users > factors.n_users:
        # New users' positives restricted to the items the model knows.
        new_user_rows = sp.csr_matrix(csr[factors.n_users :, : factors.n_items])
        user_out[factors.n_users :] = fold_in_users(
            model, new_user_rows, n_sweeps=n_sweeps, tolerance=tolerance, backend=backend
        ).astype(dtype, copy=False)

    item_out = np.zeros((n_items, n_coclusters), dtype=dtype)
    item_out[: factors.n_items] = factors.item_factors
    if n_items > factors.n_items:
        # New items' positives, item-major, against the extended user block.
        new_item_rows = sp.csr_matrix(csr[:, factors.n_items :].T)
        item_out[factors.n_items :] = fold_in_factors(
            user_out,
            new_item_rows,
            regularization=getattr(model, "regularization", 0.0),
            backend=(
                getattr(model, "backend", "vectorized") if backend is None else backend
            ),
            n_sweeps=n_sweeps,
            tolerance=tolerance,
            sigma=getattr(model, "sigma", 0.1),
            beta=getattr(model, "beta", 0.5),
            max_backtracks=getattr(model, "max_backtracks", 20),
        ).astype(dtype, copy=False)

    if interior > 0.0:
        for block in (user_out, item_out):
            positive = block[block > 0]
            if positive.size:
                np.maximum(block, interior * float(positive.mean()), out=block)

    return FactorModel(user_out, item_out)


def recommend_folded(
    engine,
    interactions: InteractionsLike,
    model=None,
    n_items: int = 10,
    exclude_seen: bool = True,
    n_sweeps: int = 30,
    tolerance: float = 1e-8,
    backend: Optional[Union[Backend, str]] = None,
):
    """Serve top-N lists for users that are not in the training matrix.

    Folds the interaction vectors into the engine's factor model and ranks
    with the same chunked kernel as in-matrix serving, masking the provided
    interactions the way training positives are masked for known users.
    Returns a flat :class:`~repro.serving.results.TopNResult` aligned with
    the interaction rows.

    Parameters
    ----------
    engine:
        A :class:`~repro.serving.engine.TopNEngine` built on the factor path.
    interactions:
        The cold users' positives (see :func:`fold_in_users`).
    model:
        Optional fitted model to read the solver constants
        (regularisation, backend, line-search) from; defaults to the
        OCuLaR defaults when omitted.
    backend:
        Optional backend override for the fold-in sweeps (see
        :func:`fold_in_users`); the rankings are unaffected.
    """
    if engine.factors is None:
        raise ConfigurationError("cold-start serving requires a factor-path TopNEngine")
    csr = _interactions_to_csr(interactions, engine.n_items)
    scores = fold_in_scores(
        engine, csr, model=model, n_sweeps=n_sweeps, tolerance=tolerance, backend=backend
    )
    # The score block was computed for this call — hand its buffer to the
    # ranking kernel (``writable``) instead of paying a full negated copy.
    return engine.rank_scored(
        scores, n_items=n_items, seen=csr if exclude_seen else None, writable=True
    )


def fold_in_scores(
    engine,
    csr: sp.csr_matrix,
    model=None,
    n_sweeps: int = 30,
    tolerance: float = 1e-8,
    backend: Optional[Union[Backend, str]] = None,
) -> np.ndarray:
    """Fold a cold-start CSR batch in and return its dense score block.

    The fold-and-score half of :func:`recommend_folded`, shared with the
    runtime's cold-start path (which ranks the block through shard workers
    instead of in process).  ``csr`` must already be validated against the
    engine's catalogue (:func:`_interactions_to_csr`).
    """
    if model is not None:
        folded = fold_in_users(
            model, csr, n_sweeps=n_sweeps, tolerance=tolerance, backend=backend
        )
        # Score with the same item factors the users were folded against
        # (``model.factors_``).  For bias-extended models these are the plain
        # co-cluster columns: cold users have no learned bias, so cold-start
        # serving ranks by pure co-cluster affinity.
        item_factors = model.factors_.item_factors
    else:
        folded = fold_in_factors(
            engine.factors.item_factors,
            csr,
            regularization=0.0,
            backend="vectorized" if backend is None else backend,
            n_sweeps=n_sweeps,
            tolerance=tolerance,
        )
        item_factors = engine.factors.item_factors
    # One allocation (the matmul result); the probability transform runs in
    # place on it.  ``1 - exp(-aff)`` computed via negate/exp/subtract is
    # bitwise the straightforward expression.
    affinities = folded @ item_factors.T
    np.negative(affinities, out=affinities)
    np.exp(affinities, out=affinities)
    np.subtract(1.0, affinities, out=affinities)
    return affinities
