"""Batch serving: chunked top-N ranking, fold-in cold-start, sharded fan-out.

The production shape of the paper's Section VIII deployment: a
:class:`TopNEngine` scores users in chunks (one BLAS call per chunk) and
selects top-N with ``argpartition``; :func:`fold_in_users` computes factors
for unseen users against the fixed item factors so cold-start clients can be
served without refitting; :func:`serve_sharded` fans user shards across the
executors of :mod:`repro.parallel`.
"""

from repro.serving.batch import BatchServingResult, serve_sharded
from repro.serving.buffers import (
    BUFFER_BUDGET_ENV,
    DEFAULT_BUFFER_BUDGET_MB,
    BufferPoolStats,
    ScoreBufferPool,
    score_buffer_budget_bytes,
)
from repro.serving.engine import TopNEngine
from repro.serving.fold_in import (
    clear_fold_in_plan_cache,
    extend_factors,
    fold_in_factors,
    fold_in_items,
    fold_in_user,
    fold_in_users,
    recommend_folded,
)
from repro.serving.results import TopNResult
from repro.serving.shared import (
    SharedCsrSpec,
    SharedEngineSpec,
    attach_engine,
    publish_engine,
    unpublish_engine,
)

__all__ = [
    "TopNEngine",
    "TopNResult",
    "BatchServingResult",
    "serve_sharded",
    "BUFFER_BUDGET_ENV",
    "DEFAULT_BUFFER_BUDGET_MB",
    "BufferPoolStats",
    "ScoreBufferPool",
    "score_buffer_budget_bytes",
    "clear_fold_in_plan_cache",
    "extend_factors",
    "fold_in_factors",
    "fold_in_items",
    "fold_in_user",
    "fold_in_users",
    "recommend_folded",
    "SharedCsrSpec",
    "SharedEngineSpec",
    "attach_engine",
    "publish_engine",
    "unpublish_engine",
]
