"""Evaluation protocols: score a fitted recommender against held-out positives.

:func:`evaluate_recommender` implements the paper's protocol: for every test
user, rank the unknown items of the *training* matrix, take the top ``M`` and
compare against the user's held-out positives, then average recall@M, MAP@M
(and companions) over users.  :func:`evaluate_curves` sweeps ``M`` to produce
the Figure 5 curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.base import Recommender
from repro.data.splitting import Split
from repro.evaluation import metrics
from repro.exceptions import EvaluationError
from repro.serving.engine import TopNEngine


@dataclass
class EvaluationResult:
    """Aggregated ranking metrics over the test users.

    Attributes
    ----------
    m:
        Cut-off used for every metric.
    n_users:
        Number of users that contributed to the averages.
    recall, map, precision, ndcg, hit_rate:
        Mean metric values over those users.
    per_user:
        Optional per-user recall/AP breakdown (populated when
        ``keep_per_user=True``), useful for significance checks.
    """

    m: int
    n_users: int
    recall: float
    map: float
    precision: float
    ndcg: float
    hit_rate: float
    per_user: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the aggregate metrics (for tables/JSON)."""
        return {
            "m": float(self.m),
            "n_users": float(self.n_users),
            "recall": self.recall,
            "map": self.map,
            "precision": self.precision,
            "ndcg": self.ndcg,
            "hit_rate": self.hit_rate,
        }


def evaluate_recommender(
    model: Recommender,
    split: Split,
    m: int = 50,
    users: Optional[Iterable[int]] = None,
    keep_per_user: bool = False,
) -> EvaluationResult:
    """Evaluate a fitted recommender on a train/test split.

    Parameters
    ----------
    model:
        A recommender already fitted on ``split.train``.
    split:
        The train/test partition produced by
        :mod:`repro.data.splitting`.
    m:
        Recommendation-list length (the paper uses M=50 for Table I).
    users:
        Optional subset of test users to evaluate (defaults to every user
        with held-out positives); the Table I benchmark subsamples users to
        keep runtimes small.
    keep_per_user:
        When ``True``, the per-user recall/AP values are retained in the
        result for downstream statistical analysis.

    Returns
    -------
    EvaluationResult
        Mean recall@M, MAP@M, precision@M, NDCG@M and hit-rate@M.
    """
    if m <= 0:
        raise EvaluationError(f"m must be positive, got {m}")
    if not model.is_fitted:
        raise EvaluationError("the recommender must be fitted before evaluation")

    if users is None:
        eligible = sorted(split.test_items.keys())
    else:
        eligible = [user for user in users if user in split.test_items]
    if not eligible:
        raise EvaluationError("no test users with held-out positives to evaluate")

    recalls: List[float] = []
    average_precisions: List[float] = []
    precisions: List[float] = []
    ndcgs: List[float] = []
    hits: List[float] = []
    per_user: Dict[int, Dict[str, float]] = {}

    # All eligible users are ranked in one pass through the chunked serving
    # engine (identical rankings to per-user ``model.recommend``).
    engine = TopNEngine.from_model(model)
    rankings = engine.recommend_batch(eligible, n_items=m, exclude_seen=True)

    for user, ranked in zip(eligible, rankings):
        relevant = split.test_items[user]
        user_recall = metrics.recall_at_m(ranked, relevant, m)
        user_ap = metrics.average_precision_at_m(ranked, relevant, m)
        user_precision = metrics.precision_at_m(ranked, relevant, m)
        user_ndcg = metrics.ndcg_at_m(ranked, relevant, m)
        user_hit = metrics.hit_rate_at_m(ranked, relevant, m)
        recalls.append(user_recall)
        average_precisions.append(user_ap)
        precisions.append(user_precision)
        ndcgs.append(user_ndcg)
        hits.append(user_hit)
        if keep_per_user:
            per_user[user] = {
                "recall": user_recall,
                "ap": user_ap,
                "precision": user_precision,
                "ndcg": user_ndcg,
                "hit": user_hit,
            }

    return EvaluationResult(
        m=m,
        n_users=len(eligible),
        recall=float(np.mean(recalls)),
        map=float(np.mean(average_precisions)),
        precision=float(np.mean(precisions)),
        ndcg=float(np.mean(ndcgs)),
        hit_rate=float(np.mean(hits)),
        per_user=per_user,
    )


def evaluate_curves(
    model: Recommender,
    split: Split,
    m_values: Sequence[int],
    users: Optional[Iterable[int]] = None,
) -> Dict[int, EvaluationResult]:
    """Evaluate at several cut-offs (the Figure 5 recall@M / MAP@M curves).

    The recommendation list is computed once per user at ``max(m_values)``
    and truncated for the smaller cut-offs, so the sweep costs barely more
    than a single evaluation.
    """
    if not m_values:
        raise EvaluationError("m_values must not be empty")
    m_sorted = sorted(set(int(m) for m in m_values))
    if m_sorted[0] <= 0:
        raise EvaluationError("all cut-offs must be positive")
    max_m = m_sorted[-1]

    if users is None:
        eligible = sorted(split.test_items.keys())
    else:
        eligible = [user for user in users if user in split.test_items]
    if not eligible:
        raise EvaluationError("no test users with held-out positives to evaluate")

    accumulators: Dict[int, Dict[str, List[float]]] = {
        m: {"recall": [], "ap": [], "precision": [], "ndcg": [], "hit": []} for m in m_sorted
    }
    engine = TopNEngine.from_model(model)
    rankings = engine.recommend_batch(eligible, n_items=max_m, exclude_seen=True)

    for user, ranked_full in zip(eligible, rankings):
        relevant = split.test_items[user]
        for m in m_sorted:
            ranked = ranked_full[:m]
            accumulators[m]["recall"].append(metrics.recall_at_m(ranked, relevant, m))
            accumulators[m]["ap"].append(metrics.average_precision_at_m(ranked, relevant, m))
            accumulators[m]["precision"].append(metrics.precision_at_m(ranked, relevant, m))
            accumulators[m]["ndcg"].append(metrics.ndcg_at_m(ranked, relevant, m))
            accumulators[m]["hit"].append(metrics.hit_rate_at_m(ranked, relevant, m))

    results: Dict[int, EvaluationResult] = {}
    for m in m_sorted:
        acc = accumulators[m]
        results[m] = EvaluationResult(
            m=m,
            n_users=len(eligible),
            recall=float(np.mean(acc["recall"])),
            map=float(np.mean(acc["ap"])),
            precision=float(np.mean(acc["precision"])),
            ndcg=float(np.mean(acc["ndcg"])),
            hit_rate=float(np.mean(acc["hit"])),
        )
    return results


def compare_recommenders(
    models: Mapping[str, Recommender],
    split: Split,
    m: int = 50,
    users: Optional[Iterable[int]] = None,
) -> Dict[str, EvaluationResult]:
    """Evaluate several fitted recommenders on the same split.

    Returns a mapping from model name to its :class:`EvaluationResult`; used
    by the Table I benchmark to build the per-dataset comparison rows.
    """
    user_list = None if users is None else list(users)
    return {
        name: evaluate_recommender(model, split, m=m, users=user_list)
        for name, model in models.items()
    }
