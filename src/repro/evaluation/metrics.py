"""Ranking metrics used by the paper's evaluation (Section VII-B.1).

The paper reports recall@M and MAP@M.  Their definitions, restated:

* ``recall@M(u) = |relevant(u) ∩ top_M(u)| / |relevant(u)|``
* ``AP@M(u) = sum_{m=1..M} Prec(m) * 1[item_m relevant] / min(|relevant(u)|, M)``
* ``MAP@M`` is the mean of ``AP@M(u)`` over users.

This module also provides precision@M, hit-rate@M and NDCG@M, which are used
in tests and extra diagnostics.  All functions accept a *ranked list* of
recommended item indices and a *set/array* of relevant item indices, and are
deliberately free of any model-specific logic.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

import numpy as np

from repro.exceptions import EvaluationError


def _as_ranked_array(ranked_items: Sequence[int]) -> np.ndarray:
    ranked = np.asarray(list(ranked_items), dtype=np.int64)
    if ranked.ndim != 1:
        raise EvaluationError("ranked_items must be a one-dimensional sequence")
    return ranked


def _as_relevant_set(relevant_items: Iterable[int]) -> Set[int]:
    relevant = {int(item) for item in relevant_items}
    return relevant


def precision_at_m(ranked_items: Sequence[int], relevant_items: Iterable[int], m: int) -> float:
    """Fraction of the top-``m`` recommendations that are relevant.

    ``Prec(m)`` in the paper's notation.  When fewer than ``m`` items were
    recommended the denominator is still ``m`` (missing slots count as
    misses), which matches the usual information-retrieval convention.
    """
    if m <= 0:
        raise EvaluationError(f"m must be positive, got {m}")
    ranked = _as_ranked_array(ranked_items)[:m]
    relevant = _as_relevant_set(relevant_items)
    if not relevant:
        return 0.0
    hits = sum(1 for item in ranked if int(item) in relevant)
    return hits / float(m)


def recall_at_m(ranked_items: Sequence[int], relevant_items: Iterable[int], m: int) -> float:
    """Fraction of the relevant items that appear in the top ``m``.

    This is the paper's primary metric; it is preferred over precision in the
    one-class setting because an unknown example is not necessarily a
    negative (Section VII-B.1).
    """
    if m <= 0:
        raise EvaluationError(f"m must be positive, got {m}")
    ranked = _as_ranked_array(ranked_items)[:m]
    relevant = _as_relevant_set(relevant_items)
    if not relevant:
        raise EvaluationError("recall@M is undefined for a user with no relevant items")
    hits = sum(1 for item in ranked if int(item) in relevant)
    return hits / float(len(relevant))


def hit_rate_at_m(ranked_items: Sequence[int], relevant_items: Iterable[int], m: int) -> float:
    """1.0 when at least one relevant item appears in the top ``m``, else 0.0."""
    if m <= 0:
        raise EvaluationError(f"m must be positive, got {m}")
    ranked = _as_ranked_array(ranked_items)[:m]
    relevant = _as_relevant_set(relevant_items)
    if not relevant:
        return 0.0
    return 1.0 if any(int(item) in relevant for item in ranked) else 0.0


def average_precision_at_m(
    ranked_items: Sequence[int], relevant_items: Iterable[int], m: int
) -> float:
    """Average precision at ``m`` exactly as defined in the paper.

    ``AP@M(u) = sum_m Prec(m) 1[r_{u,i_m}=1] / min(|{i : r_ui = 1}|, M)``.

    The normaliser ``min(#relevant, M)`` guarantees ``AP@M <= 1``.
    """
    if m <= 0:
        raise EvaluationError(f"m must be positive, got {m}")
    ranked = _as_ranked_array(ranked_items)[:m]
    relevant = _as_relevant_set(relevant_items)
    if not relevant:
        raise EvaluationError("AP@M is undefined for a user with no relevant items")
    hits = 0
    precision_sum = 0.0
    for position, item in enumerate(ranked, start=1):
        if int(item) in relevant:
            hits += 1
            precision_sum += hits / float(position)
    return precision_sum / float(min(len(relevant), m))


def ndcg_at_m(ranked_items: Sequence[int], relevant_items: Iterable[int], m: int) -> float:
    """Normalised discounted cumulative gain at ``m`` with binary relevance.

    Not reported in the paper but a standard companion metric; included for
    completeness and used in tests as an independent cross-check on the
    ranking quality ordering of the algorithms.
    """
    if m <= 0:
        raise EvaluationError(f"m must be positive, got {m}")
    ranked = _as_ranked_array(ranked_items)[:m]
    relevant = _as_relevant_set(relevant_items)
    if not relevant:
        raise EvaluationError("NDCG@M is undefined for a user with no relevant items")
    gains = np.array([1.0 if int(item) in relevant else 0.0 for item in ranked])
    discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
    dcg = float(np.sum(gains * discounts))
    ideal_hits = min(len(relevant), m)
    ideal = float(np.sum(1.0 / np.log2(np.arange(2, ideal_hits + 2))))
    if ideal == 0.0:
        return 0.0
    return dcg / ideal


def catalog_coverage(recommendations: Iterable[Sequence[int]], n_items: int) -> float:
    """Fraction of the catalogue that appears in at least one top-M list.

    A diversity diagnostic used in the deployment example: co-cluster based
    recommenders should cover more of the long tail than popularity ranking.
    """
    if n_items <= 0:
        raise EvaluationError(f"n_items must be positive, got {n_items}")
    recommended: Set[int] = set()
    for ranked in recommendations:
        recommended.update(int(item) for item in ranked)
    return len(recommended) / float(n_items)
