"""Cross-validated performance estimation.

The paper selects K and lambda "from the data via cross-validation"
(Section IV-B).  :func:`cross_validate` fits a freshly constructed model on
the training part of each fold and averages the evaluation metrics over
folds; it is the building block :mod:`repro.evaluation.grid_search` calls
for every hyper-parameter combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.base import Recommender
from repro.data.interactions import InteractionMatrix
from repro.data.splitting import Split, kfold_splits, train_test_split
from repro.evaluation.evaluator import EvaluationResult, evaluate_recommender
from repro.exceptions import EvaluationError
from repro.utils.rng import RandomStateLike, spawn_seeds

ModelFactory = Callable[[], Recommender]


@dataclass
class CrossValidationResult:
    """Per-fold and aggregate metrics of a cross-validation run."""

    fold_results: List[EvaluationResult]

    @property
    def n_folds(self) -> int:
        """Number of folds evaluated."""
        return len(self.fold_results)

    def mean(self, metric: str = "recall") -> float:
        """Mean of ``metric`` over folds (e.g. ``"recall"`` or ``"map"``)."""
        values = [getattr(result, metric) for result in self.fold_results]
        return float(np.mean(values))

    def std(self, metric: str = "recall") -> float:
        """Standard deviation of ``metric`` over folds."""
        values = [getattr(result, metric) for result in self.fold_results]
        return float(np.std(values))

    def as_dict(self) -> Dict[str, float]:
        """Aggregate mean/std for the standard metrics."""
        summary: Dict[str, float] = {"n_folds": float(self.n_folds)}
        for metric in ("recall", "map", "precision", "ndcg", "hit_rate"):
            summary[f"{metric}_mean"] = self.mean(metric)
            summary[f"{metric}_std"] = self.std(metric)
        return summary


def cross_validate(
    model_factory: ModelFactory,
    matrix: InteractionMatrix,
    n_folds: int = 3,
    m: int = 50,
    max_users: Optional[int] = None,
    random_state: RandomStateLike = None,
) -> CrossValidationResult:
    """Estimate ranking performance of a model family by k-fold CV.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh, unfitted recommender
        (e.g. ``lambda: OCuLaR(n_coclusters=100, regularization=30)``).
    matrix:
        Full interaction matrix; folds are built over its positive pairs.
    n_folds:
        Number of folds.
    m:
        Metric cut-off.
    max_users:
        Optional cap on the number of evaluated test users per fold (keeps
        fine-grained grid searches affordable, mirroring the paper's use of
        GPU acceleration for exactly this purpose).
    random_state:
        Seed controlling both the fold assignment and the user subsampling.
    """
    if n_folds < 2:
        raise EvaluationError(f"n_folds must be at least 2, got {n_folds}")
    seeds = spawn_seeds(random_state, n_folds + 1)
    fold_results: List[EvaluationResult] = []
    for fold_index, split in enumerate(kfold_splits(matrix, n_folds=n_folds, random_state=seeds[0])):
        model = model_factory()
        model.fit(split.train)
        users = _select_users(split, max_users, seeds[fold_index + 1])
        fold_results.append(evaluate_recommender(model, split, m=m, users=users))
    if not fold_results:
        raise EvaluationError("cross-validation produced no evaluable folds")
    return CrossValidationResult(fold_results=fold_results)


def repeated_holdout(
    model_factory: ModelFactory,
    matrix: InteractionMatrix,
    n_repeats: int = 10,
    test_fraction: float = 0.25,
    m: int = 50,
    max_users: Optional[int] = None,
    random_state: RandomStateLike = None,
) -> CrossValidationResult:
    """Repeated random 75/25 hold-out evaluation (the paper's Table I protocol).

    "We computed the recall@M and MAP@M by splitting the datasets into a
    training and a test dataset, with a splitting ratio of training/test of
    75/25, and averaging over 10 problem instances."
    """
    if n_repeats < 1:
        raise EvaluationError(f"n_repeats must be at least 1, got {n_repeats}")
    seeds = spawn_seeds(random_state, 2 * n_repeats)
    fold_results: List[EvaluationResult] = []
    for repeat in range(n_repeats):
        split = train_test_split(
            matrix, test_fraction=test_fraction, random_state=seeds[2 * repeat]
        )
        model = model_factory()
        model.fit(split.train)
        users = _select_users(split, max_users, seeds[2 * repeat + 1])
        fold_results.append(evaluate_recommender(model, split, m=m, users=users))
    return CrossValidationResult(fold_results=fold_results)


def _select_users(
    split: Split, max_users: Optional[int], seed: int
) -> Optional[Sequence[int]]:
    """Subsample test users when ``max_users`` caps the evaluation size."""
    if max_users is None:
        return None
    all_users = sorted(split.test_items.keys())
    if len(all_users) <= max_users:
        return all_users
    rng = np.random.default_rng(seed)
    chosen = rng.choice(all_users, size=max_users, replace=False)
    return sorted(int(user) for user in chosen)
