"""Evaluation: ranking metrics, protocols, cross-validation and grid search."""

from repro.evaluation.metrics import (
    precision_at_m,
    recall_at_m,
    average_precision_at_m,
    ndcg_at_m,
    hit_rate_at_m,
)
from repro.evaluation.evaluator import EvaluationResult, evaluate_recommender, evaluate_curves
from repro.evaluation.cross_validation import cross_validate
from repro.evaluation.grid_search import GridSearchResult, grid_search

__all__ = [
    "precision_at_m",
    "recall_at_m",
    "average_precision_at_m",
    "ndcg_at_m",
    "hit_rate_at_m",
    "EvaluationResult",
    "evaluate_recommender",
    "evaluate_curves",
    "cross_validate",
    "GridSearchResult",
    "grid_search",
]
