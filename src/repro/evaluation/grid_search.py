"""Hyper-parameter grid search (Sections IV-B, VI and Figure 9).

The paper determines the number of co-clusters K and the regularisation
strength lambda by a cross-validated grid search, and devotes its GPU section
to making that search fast.  :func:`grid_search` reproduces the procedure:
for every parameter combination a fresh model is built, evaluated (either by
k-fold CV or by a single hold-out split) and the combination with the best
value of the chosen metric wins.  The evaluation of different combinations is
embarrassingly parallel; an executor from :mod:`repro.parallel` can be
supplied to spread the work over processes, standing in for the paper's
Spark-over-GPUs deployment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.base import Recommender
from repro.data.interactions import InteractionMatrix
from repro.data.splitting import train_test_split
from repro.evaluation.cross_validation import cross_validate
from repro.evaluation.evaluator import evaluate_recommender
from repro.exceptions import ConfigurationError, EvaluationError
from repro.parallel import ShardScheduler
from repro.utils.rng import RandomStateLike, spawn_seeds

ParamGrid = Mapping[str, Sequence[Any]]
ModelBuilder = Callable[..., Recommender]


@dataclass
class GridSearchResult:
    """Outcome of a grid search.

    Attributes
    ----------
    best_params:
        The winning hyper-parameter combination.
    best_score:
        Its metric value.
    metric:
        Which metric was optimised (``"recall"`` or ``"map"`` etc.).
    table:
        One entry per combination: the parameter dict plus the score, in
        evaluation order.  The Figure 9 benchmark turns this into a heat-map.
    """

    best_params: Dict[str, Any]
    best_score: float
    metric: str
    table: List[Dict[str, Any]] = field(default_factory=list)

    def scores_as_grid(self, row_param: str, col_param: str) -> Tuple[List[Any], List[Any], np.ndarray]:
        """Pivot the result table into a 2-D score grid.

        Returns ``(row_values, col_values, grid)`` where ``grid[i, j]`` is the
        score for ``row_values[i]`` x ``col_values[j]`` (NaN if missing).
        Used to print the (K, lambda) heat-map of Figure 9.
        """
        row_values = sorted({entry[row_param] for entry in self.table})
        col_values = sorted({entry[col_param] for entry in self.table})
        grid = np.full((len(row_values), len(col_values)), np.nan)
        for entry in self.table:
            i = row_values.index(entry[row_param])
            j = col_values.index(entry[col_param])
            grid[i, j] = entry["score"]
        return row_values, col_values, grid


def parameter_combinations(grid: ParamGrid) -> List[Dict[str, Any]]:
    """Expand a parameter grid into the list of all combinations.

    The iteration order is deterministic: parameters are processed in the
    order given, values in the order listed.
    """
    if not grid:
        raise ConfigurationError("the parameter grid must not be empty")
    names = list(grid.keys())
    for name in names:
        values = list(grid[name])
        if not values:
            raise ConfigurationError(f"parameter {name!r} has no candidate values")
    combos = []
    for values in itertools.product(*(list(grid[name]) for name in names)):
        combos.append(dict(zip(names, values)))
    return combos


def _evaluate_combination(
    builder: ModelBuilder,
    params: Dict[str, Any],
    matrix: InteractionMatrix,
    metric: str,
    m: int,
    n_folds: int,
    max_users: Optional[int],
    seed: int,
) -> float:
    """Score one hyper-parameter combination (module-level for picklability)."""
    factory = lambda: builder(**params)  # noqa: E731 - tiny closure is clearest here
    if n_folds >= 2:
        result = cross_validate(
            factory, matrix, n_folds=n_folds, m=m, max_users=max_users, random_state=seed
        )
        return result.mean(metric)
    split = train_test_split(matrix, test_fraction=0.25, random_state=seed)
    model = factory()
    model.fit(split.train)
    evaluation = evaluate_recommender(model, split, m=m)
    return float(getattr(evaluation, metric))


def grid_search(
    builder: ModelBuilder,
    param_grid: ParamGrid,
    matrix: InteractionMatrix,
    metric: str = "recall",
    m: int = 50,
    n_folds: int = 1,
    max_users: Optional[int] = None,
    executor: Optional[Any] = None,
    random_state: RandomStateLike = None,
) -> GridSearchResult:
    """Search a hyper-parameter grid for the best-performing model.

    Parameters
    ----------
    builder:
        Callable mapping keyword hyper-parameters to an unfitted recommender,
        e.g. ``lambda n_coclusters, regularization: OCuLaR(...)`` or simply
        the :class:`~repro.core.ocular.OCuLaR` class itself.
    param_grid:
        Mapping from parameter name to the list of candidate values,
        e.g. ``{"n_coclusters": [50, 100, 200], "regularization": [0, 30, 100]}``.
    matrix:
        Interaction matrix to fit/evaluate on.
    metric:
        Attribute of :class:`~repro.evaluation.evaluator.EvaluationResult`
        to maximise (``"recall"``, ``"map"``, ...).
    m:
        Metric cut-off (the paper optimises recall@50).
    n_folds:
        ``1`` uses a single 75/25 hold-out per combination (fast, the paper's
        coarse CPU search); ``>= 2`` uses k-fold cross-validation.
    max_users:
        Cap on evaluated users per fold.
    executor:
        Optional executor: a name from the :mod:`repro.parallel.scheduler`
        registry (``"serial"``, ``"thread"``, ``"process"`` — built for this
        search and shut down afterwards) or a prebuilt instance (the caller
        keeps its lifecycle).  When given, the combinations are evaluated
        through ``executor.starmap``; ``None`` evaluates them inline.
    random_state:
        Seed; every combination receives the *same* split seeds so scores are
        comparable across the grid.

    Returns
    -------
    GridSearchResult
    """
    if metric not in {"recall", "map", "precision", "ndcg", "hit_rate"}:
        raise ConfigurationError(f"unsupported metric {metric!r}")
    combos = parameter_combinations(param_grid)
    seeds = spawn_seeds(random_state, 1)
    seed = seeds[0]

    tasks = [
        (builder, params, matrix, metric, m, n_folds, max_users, seed) for params in combos
    ]
    if executor is not None:
        # The scheduler owns a name-built executor (shut down on exit) and
        # borrows an instance (left running for its owner).
        with ShardScheduler(executor) as scheduler:
            scores = list(scheduler.starmap(_evaluate_combination, tasks))
    else:
        scores = [_evaluate_combination(*task) for task in tasks]

    table: List[Dict[str, Any]] = []
    best_index = -1
    best_score = -np.inf
    for index, (params, score) in enumerate(zip(combos, scores)):
        entry = dict(params)
        entry["score"] = float(score)
        table.append(entry)
        if score > best_score:
            best_score = float(score)
            best_index = index
    if best_index < 0:
        raise EvaluationError("grid search evaluated no combinations")
    return GridSearchResult(
        best_params=dict(combos[best_index]),
        best_score=best_score,
        metric=metric,
        table=table,
    )
