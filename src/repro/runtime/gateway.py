"""Async serving gateway: thousands of connections, one micro-batcher.

The :class:`~repro.runtime.batching.BatchingFrontEnd` coalesces concurrent
requests, but its callers are threads — and a thread per network client
does not scale to the paper's B2B deployment shape, where many tenants hold
long-lived connections and fire small requests at arbitrary times.
:class:`ServingGateway` puts an asyncio front door on the batcher: one
event loop multiplexes every connection, each parsed request becomes a
``front.submit_request()`` future bridged onto the loop with
:func:`asyncio.wrap_future`, and the response travels back down the same
connection.  The expensive work (merging, sharded scoring) stays exactly
where it was — on the batcher's dispatcher and the runtime's executor —
so the gateway adds concurrency without adding a serving path.

Wire protocol — newline-delimited JSON, one frame per line:

* request frame: a :meth:`RecommendRequest.to_dict` payload, optionally
  extended with ``"id"`` (any JSON value, echoed back verbatim so clients
  can pipeline) and ``"op"`` (``"recommend"``, the default, or
  ``"stats"``);
* success frame: ``{"id": ..., "ok": true, ...response.to_dict()}``;
* error frame: ``{"id": ..., "ok": false, "error": {"code": ..., "message":
  ...}}`` with codes ``bad-json``, ``bad-request``, ``unknown-op``,
  ``not-fitted``, ``closing`` and ``server-error``.  Errors are per-frame:
  a malformed request never kills its connection, let alone the server.

Admission control and fairness: at most ``max_inflight`` requests are
inside the batcher at a time.  Arrivals beyond that park in a
:class:`~repro.runtime.fairness.WeightedFairQueue` keyed by the request's
``tenant``, so a tenant flooding the gateway with a deep pipeline queues
behind itself while other tenants' requests keep being admitted at their
fair share — deficit round-robin, one admission per unit of tenant weight.

Failure modes are contained per connection: a client that disconnects
mid-flight has exactly its own frames cancelled (pending batcher futures
are dropped by the dispatcher's ``set_running_or_notify_cancel``; already
running ones complete and are discarded), and :meth:`close` stops accepting
new frames with a ``closing`` error while every in-flight frame resolves
and is written out before the sockets shut — drain-on-close, same contract
as the batcher beneath.

:class:`GatewayThread` runs the event loop in a daemon thread so
synchronous applications (and the test-suite) can host a gateway next to a
runtime; :class:`GatewayClient` is the matching blocking socket client.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Dict, Optional, Set, Tuple

from repro.api import RecommendRequest, RecommendResponse
from repro.exceptions import ConfigurationError, NotFittedError, ReproError
from repro.runtime.fairness import WeightedFairQueue
from repro.utils.validation import check_positive_int

__all__ = ["GatewayClient", "GatewayError", "GatewayThread", "ServingGateway"]


class GatewayError(ReproError):
    """A gateway error frame, surfaced client-side with its wire code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def _error_frame(rid, code: str, message: str) -> dict:
    return {"id": rid, "ok": False, "error": {"code": code, "message": message}}


class ServingGateway:
    """Asyncio front door bridging socket clients onto a batching front-end.

    Parameters
    ----------
    front:
        The :class:`~repro.runtime.batching.BatchingFrontEnd` to serve
        through (borrowed — closing the gateway never closes it).
    host / port:
        Bind address.  ``port=0`` picks a free port; read :attr:`address`
        after :meth:`start`.
    max_inflight:
        Admission cap: requests inside the batcher at once, across all
        connections.  Arrivals beyond it park in the fair queue.
    max_connection_inflight:
        Pipelining bound per connection: a connection with this many frames
        outstanding is not read from until one resolves, so one client
        cannot queue unbounded memory server-side.
    fair_queue:
        The tenant arbitration queue; defaults to an equal-weight
        :class:`~repro.runtime.fairness.WeightedFairQueue`.

    All state is owned by the event loop thread — the class is not
    thread-safe by itself; cross-thread use goes through
    :class:`GatewayThread`.
    """

    def __init__(
        self,
        front,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        max_connection_inflight: int = 256,
        fair_queue: Optional[WeightedFairQueue] = None,
    ) -> None:
        self._front = front
        self.host = host
        self.port = port
        self.max_inflight = check_positive_int(max_inflight, "max_inflight")
        self.max_connection_inflight = check_positive_int(
            max_connection_inflight, "max_connection_inflight"
        )
        self._queue = fair_queue if fair_queue is not None else WeightedFairQueue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._closing = False
        self._inflight = 0
        self._connections: Set[asyncio.StreamWriter] = set()
        self._tasks: Set[asyncio.Task] = set()
        # Counters for the stats frame.
        self._accepted = 0
        self._frames = 0
        self._responses = 0
        self._errors: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def front(self):
        """The borrowed batching front-end."""
        return self._front

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ConfigurationError("the gateway is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def connections(self) -> int:
        """Connections currently open."""
        return len(self._connections)

    @property
    def inflight(self) -> int:
        """Requests currently admitted into the batcher."""
        return self._inflight

    @property
    def queued(self) -> int:
        """Requests parked in the fair queue awaiting admission."""
        return len(self._queue)

    def stats_payload(self) -> dict:
        """JSON-ready gateway + batcher + serving + model state for the stats frame."""
        payload = {
            "gateway": {
                "connections": len(self._connections),
                "connections_accepted": self._accepted,
                "frames": self._frames,
                "responses": self._responses,
                "errors": dict(self._errors),
                "inflight": self._inflight,
                "queued": len(self._queue),
                "max_inflight": self.max_inflight,
                "closing": self._closing,
            },
            "batching": self._front.stats().as_dict(),
            "generation": getattr(self._front.runtime, "generation", 0),
        }
        engine = getattr(self._front.runtime, "engine", None)
        if engine is not None:
            # Operational visibility into the serving hot path: what dtype
            # and chunk the engine actually runs, and the buffer pool's
            # allocation counters (allocations flat + reuses growing is the
            # steady-state zero-allocation signature).
            pool = engine.pool.stats()
            payload["serving"] = {
                "dtype": engine.serving_dtype.name,
                "chunk_size": engine.chunk_size,
                "effective_chunk_size": engine.effective_chunk_size(),
                "buffer_budget_bytes": engine.buffer_budget_bytes,
                "pool": {
                    "allocations": pool.allocations,
                    "reuses": pool.reuses,
                    "outstanding": pool.outstanding,
                    "bytes_allocated": pool.bytes_allocated,
                    "cached_blocks": pool.cached_blocks,
                },
            }
        model = getattr(self._front.runtime, "model", None)
        history = getattr(model, "history_", None)
        if history is not None and getattr(history, "item_sweep_stats", None):
            # The training-side mirror of the pool counters above: the sweep
            # workspaces' footprint and allocation-vs-reuse balance of the
            # model's last (re)fit.
            payload["training"] = {
                "iterations": history.n_iterations,
                "peak_workspace_bytes": history.peak_workspace_bytes,
                "workspace_allocations": history.total_workspace_allocations,
                "workspace_reuses": history.total_workspace_reuses,
            }
        return payload

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "ServingGateway":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ConfigurationError("the gateway is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self

    async def close(self) -> None:
        """Drain in-flight frames, then close every connection; idempotent.

        New frames arriving during the drain are answered with a
        ``closing`` error; frames already admitted (or parked in the fair
        queue) resolve and are written out before the sockets close.
        """
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        for writer in list(self._connections):
            writer.close()
        for writer in list(self._connections):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
        self._connections.clear()

    async def __aenter__(self) -> "ServingGateway":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    async def _admit(self, tenant: str) -> None:
        """Take one admission slot, parking in the fair queue when full.

        Fairness engages exactly when it matters: with a free slot and an
        empty queue the request is admitted immediately (FIFO behaviour
        under light load); otherwise it parks under its tenant and the DRR
        queue decides whose parked request the next free slot admits.
        """
        if self._inflight < self.max_inflight and not len(self._queue):
            self._inflight += 1
            return
        gate = asyncio.get_running_loop().create_future()
        self._queue.push(tenant, gate)
        try:
            await gate
        except asyncio.CancelledError:
            # Cancelled after the pump granted the slot: hand it back, or
            # the slot leaks and the gateway strangles to max_inflight - 1.
            if gate.done() and not gate.cancelled():
                self._release()
            raise

    def _release(self) -> None:
        """Free one admission slot and admit the fairest parked request."""
        self._inflight -= 1
        self._pump()

    def _pump(self) -> None:
        while self._inflight < self.max_inflight:
            gate = self._queue.pop()
            if gate is None:
                return
            if gate.cancelled():
                continue  # its connection died while parked
            self._inflight += 1
            gate.set_result(None)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._accepted += 1
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        frames: Set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # EOF: client closed its write side
                line = line.strip()
                if not line:
                    continue
                if len(frames) >= self.max_connection_inflight:
                    await asyncio.wait(frames, return_when=asyncio.FIRST_COMPLETED)
                task = loop.create_task(self._serve_frame(line, writer, write_lock))
                frames.add(task)
                self._tasks.add(task)
                task.add_done_callback(frames.discard)
                task.add_done_callback(self._tasks.discard)
        finally:
            # The reader is gone: whatever this connection still has in
            # flight can never be delivered.  Cancel exactly these frames —
            # their pending batcher futures are dropped by the dispatcher,
            # every other connection is untouched.
            for task in list(frames):
                task.cancel()
            if frames:
                await asyncio.gather(*list(frames), return_exceptions=True)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_frame(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        """Parse, admit, serve and answer one frame; errors stay per-frame."""
        self._frames += 1
        rid = None
        try:
            try:
                payload = json.loads(line.decode("utf-8", errors="replace"))
            except json.JSONDecodeError as error:
                await self._send_error(
                    writer, write_lock, rid, "bad-json", f"frame is not valid JSON: {error}"
                )
                return
            if not isinstance(payload, dict):
                await self._send_error(
                    writer, write_lock, rid, "bad-json", "a frame must be a JSON object"
                )
                return
            rid = payload.pop("id", None)
            op = payload.pop("op", "recommend")
            if self._closing:
                await self._send_error(
                    writer, write_lock, rid, "closing", "the gateway is shutting down"
                )
                return
            if op == "stats":
                await self._send(
                    writer, write_lock, {"id": rid, "ok": True, "stats": self.stats_payload()}
                )
                return
            if op != "recommend":
                await self._send_error(
                    writer, write_lock, rid, "unknown-op",
                    f"unknown op {op!r} (accepted: recommend, stats)",
                )
                return
            try:
                request = RecommendRequest.from_dict(payload)
            except ConfigurationError as error:
                await self._send_error(writer, write_lock, rid, "bad-request", str(error))
                return
            await self._admit(request.tenant)
            try:
                response = await asyncio.wrap_future(
                    self._front.submit_request(request)
                )
            finally:
                self._release()
            self._responses += 1
            await self._send(writer, write_lock, {"id": rid, "ok": True, **response.to_dict()})
        except asyncio.CancelledError:
            raise  # disconnect / shutdown: nobody left to answer
        except NotFittedError as error:
            await self._send_error(writer, write_lock, rid, "not-fitted", str(error))
        except ConfigurationError as error:
            await self._send_error(writer, write_lock, rid, "bad-request", str(error))
        except Exception as error:  # noqa: BLE001 - the connection must survive
            await self._send_error(
                writer, write_lock, rid, "server-error",
                f"{type(error).__name__}: {error}",
            )

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, frame: dict
    ) -> None:
        data = json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client is gone; its reader loop will clean up

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        rid,
        code: str,
        message: str,
    ) -> None:
        self._errors[code] = self._errors.get(code, 0) + 1
        await self._send(writer, write_lock, _error_frame(rid, code, message))


class GatewayThread:
    """Host a :class:`ServingGateway` on a daemon event-loop thread.

    The synchronous twin of ``async with ServingGateway(...)`` — start
    binds the socket before returning, close drains before returning, and
    the context-manager form gives both for free::

        with BatchingFrontEnd(runtime) as front:
            with GatewayThread(front) as gateway:
                host, port = gateway.address
                ...  # connect GatewayClients
    """

    def __init__(self, front, **gateway_kwargs) -> None:
        self.gateway = ServingGateway(front, **gateway_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._address

    def start(self) -> "GatewayThread":
        if self._started:
            raise ConfigurationError("the gateway thread is already started")
        self._started = True
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            ready.set()
            self._loop.run_forever()
            # run_forever returned: cancel stragglers and close the loop in
            # its own thread, where loop methods are legal.
            self._loop.close()

        self._thread = threading.Thread(target=run, name="serving-gateway", daemon=True)
        self._thread.start()
        ready.wait()
        future = asyncio.run_coroutine_threadsafe(self.gateway.start(), self._loop)
        try:
            future.result(timeout=30)
            self._address = self.gateway.address
        except BaseException:
            self.close()
            raise
        return self

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Drain the gateway and stop the loop thread; idempotent."""
        if self._closed or self._loop is None:
            return
        self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(self.gateway.close(), self._loop).result(
                timeout=timeout
            )
        except Exception:  # pragma: no cover - drain timeout / loop death
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class GatewayClient:
    """Blocking NDJSON client for a :class:`ServingGateway`.

    One socket, synchronous request/response; ``send_frame`` /
    ``recv_frame`` expose the raw protocol for pipelined use (responses to
    pipelined frames are matched by the echoed ``id``).
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def send_frame(self, frame: dict) -> None:
        """Write one raw frame (no waiting)."""
        self._file.write(json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n")
        self._file.flush()

    def recv_frame(self) -> dict:
        """Read one raw frame; raises :class:`GatewayError` on EOF."""
        line = self._file.readline()
        if not line:
            raise GatewayError("connection-closed", "the gateway closed the connection")
        return json.loads(line)

    def request(self, frame: dict) -> dict:
        """One frame round-trip, with an auto-assigned ``id``."""
        frame = dict(frame)
        frame.setdefault("id", self._assign_id())
        self.send_frame(frame)
        return self.recv_frame()

    def _assign_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        """Serve one :class:`RecommendRequest` over the wire.

        Raises :class:`GatewayError` with the wire code when the gateway
        answers with an error frame.
        """
        frame = self.request(request.to_dict())
        if not frame.get("ok"):
            error = frame.get("error") or {}
            raise GatewayError(
                error.get("code", "unknown"), error.get("message", "unknown error")
            )
        return RecommendResponse.from_dict(frame)

    def stats(self) -> dict:
        """The gateway's stats payload."""
        frame = self.request({"op": "stats"})
        if not frame.get("ok"):  # pragma: no cover - stats cannot fail today
            error = frame.get("error") or {}
            raise GatewayError(
                error.get("code", "unknown"), error.get("message", "unknown error")
            )
        return frame["stats"]

    def close(self) -> None:
        try:
            self._file.close()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
        self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
