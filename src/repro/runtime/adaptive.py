"""Adaptive micro-batch delay: tune ``max_delay_ms`` against a queue SLO.

The micro-batcher's ``max_delay_ms`` is a static bet about traffic: a large
delay buys occupancy under heavy load (more requests gather per batch, so
dispatch overhead amortises) but under light load it is pure added latency —
a lone request sits out the full window with nobody joining it.  No single
constant is right on both sides of a diurnal traffic curve.

:class:`AdaptiveDelayController` replaces the constant with a feedback loop
driven by two signals the front-end already measures:

* **arrival rate** — submissions per second over a sliding window.  The
  product ``rate x delay`` estimates how much *company* a request that
  waits the full window can expect.  When that estimate is below
  :attr:`min_companions`, waiting cannot buy occupancy and the delay
  shrinks toward :attr:`floor_ms` (latency mode).
* **queue-wait p95** — the tail of submission-to-dispatch waits.  While the
  p95 is comfortably inside the SLO target (below ``slo_fraction`` of it)
  *and* traffic is heavy enough to fill batches, the delay grows toward
  :attr:`ceiling_ms` (occupancy mode).  The moment the p95 crosses
  :attr:`slo_p95_ms`, the delay shrinks multiplicatively — the SLO is a
  hard bound the controller backs away from, whatever the load.

Multiplicative-increase / multiplicative-decrease keeps the loop stable:
the delay moves a bounded factor per adjustment, adjustments happen at most
once per :attr:`adjust_interval_s`, and the value is always clamped to
``[floor_ms, ceiling_ms]``.

The controller is deliberately clock-free: every observation carries an
explicit ``now`` timestamp (the front-end passes ``time.monotonic()``), so
tests can drive synthetic traffic through it deterministically.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive_float

#: Samples retained for the rate / percentile windows.
_WINDOW = 4096


class AdaptiveDelayController:
    """SLO-bounded controller for the micro-batcher's accumulation delay.

    Parameters
    ----------
    floor_ms / ceiling_ms:
        Hard bounds for the delay.  The floor is the latency mode (light
        load), the ceiling the occupancy mode (heavy load, SLO permitting).
    slo_p95_ms:
        Queue-latency SLO target: whenever the observed queue-wait p95
        exceeds it, the delay shrinks — regardless of load.
    window_s:
        Sliding window for the arrival rate and the wait percentiles.
    adjust_interval_s:
        Minimum time between delay adjustments (the control period).
    grow / shrink:
        Multiplicative step factors (``grow > 1``, ``0 < shrink < 1``).
    min_companions:
        Minimum expected batch company (``arrival rate x delay``) for
        holding the window open to be worth anything; below it the
        controller treats the load as light and shrinks.
    slo_fraction:
        Growth only happens while the p95 is below this fraction of the
        SLO, leaving headroom so one growth step cannot overshoot the
        target it is bounded by.
    """

    def __init__(
        self,
        floor_ms: float = 0.5,
        ceiling_ms: float = 25.0,
        slo_p95_ms: float = 20.0,
        window_s: float = 2.0,
        adjust_interval_s: float = 0.05,
        grow: float = 1.25,
        shrink: float = 0.6,
        min_companions: float = 2.0,
        slo_fraction: float = 0.6,
    ) -> None:
        self.floor_ms = check_positive_float(floor_ms, "floor_ms")
        self.ceiling_ms = check_positive_float(ceiling_ms, "ceiling_ms")
        if self.ceiling_ms < self.floor_ms:
            raise ConfigurationError(
                f"ceiling_ms ({ceiling_ms}) must be >= floor_ms ({floor_ms})"
            )
        self.slo_p95_ms = check_positive_float(slo_p95_ms, "slo_p95_ms")
        self.window_s = check_positive_float(window_s, "window_s")
        self.adjust_interval_s = check_positive_float(
            adjust_interval_s, "adjust_interval_s"
        )
        if grow <= 1.0:
            raise ConfigurationError(f"grow must be > 1, got {grow}")
        if not 0.0 < shrink < 1.0:
            raise ConfigurationError(f"shrink must be in (0, 1), got {shrink}")
        self.grow = float(grow)
        self.shrink = float(shrink)
        self.min_companions = check_positive_float(min_companions, "min_companions")
        if not 0.0 < slo_fraction <= 1.0:
            raise ConfigurationError(
                f"slo_fraction must be in (0, 1], got {slo_fraction}"
            )
        self.slo_fraction = float(slo_fraction)
        # Start at the ceiling: before any evidence arrives the safe bet is
        # the occupancy bound the operator configured; the first light-load
        # observations walk it down within a few control periods.
        self._delay_ms = self.ceiling_ms
        self._arrivals: Deque[float] = deque(maxlen=_WINDOW)
        self._waits: Deque[Tuple[float, float]] = deque(maxlen=_WINDOW)
        self._last_adjust: float = float("-inf")
        self._adjustments = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Signals in
    # ------------------------------------------------------------------ #
    def observe_arrival(self, now: float) -> None:
        """Record one request submission at monotonic time ``now``."""
        with self._lock:
            self._arrivals.append(now)

    def observe_batch(self, now: float, queue_waits_s: Sequence[float]) -> float:
        """Record a dispatched batch's queue waits; maybe adjust; return delay.

        Called by the front-end once per sealed batch with the waits
        (submission to dispatch, seconds) of every request in it.  At most
        once per :attr:`adjust_interval_s` the controller re-evaluates the
        delay from the windowed signals.
        """
        with self._lock:
            for wait in queue_waits_s:
                self._waits.append((now, float(wait) * 1000.0))
            if now - self._last_adjust < self.adjust_interval_s:
                return self._delay_ms
            self._last_adjust = now
            self._adjust(now)
            return self._delay_ms

    # ------------------------------------------------------------------ #
    # Signals out
    # ------------------------------------------------------------------ #
    @property
    def delay_ms(self) -> float:
        """The delay the front-end should currently hold batches open for."""
        with self._lock:
            return self._delay_ms

    @property
    def adjustments(self) -> int:
        """How many control periods have re-evaluated the delay."""
        with self._lock:
            return self._adjustments

    def arrival_rate(self, now: float) -> float:
        """Arrivals per second over the sliding window ending at ``now``."""
        with self._lock:
            return self._rate(now)

    def queue_p95_ms(self, now: float) -> float:
        """Windowed queue-wait p95 in milliseconds (0 with no samples)."""
        with self._lock:
            waits = self._recent_waits(now)
            return float(np.percentile(waits, 95)) if waits else 0.0

    # ------------------------------------------------------------------ #
    # Control law
    # ------------------------------------------------------------------ #
    def _rate(self, now: float) -> float:
        horizon = now - self.window_s
        count = sum(1 for ts in self._arrivals if ts > horizon)
        return count / self.window_s

    def _recent_waits(self, now: float):
        horizon = now - self.window_s
        return [wait for ts, wait in self._waits if ts > horizon]

    def _adjust(self, now: float) -> None:
        self._adjustments += 1
        rate = self._rate(now)
        waits = self._recent_waits(now)
        p95 = float(np.percentile(waits, 95)) if waits else 0.0
        companions = rate * (self._delay_ms / 1000.0)
        if p95 > self.slo_p95_ms:
            # SLO pressure wins over everything: back off.
            delay = self._delay_ms * self.shrink
        elif companions < self.min_companions:
            # Light load: holding the window open buys no occupancy.
            delay = self._delay_ms * self.shrink
        elif p95 < self.slo_fraction * self.slo_p95_ms:
            # Heavy load with SLO headroom: trade latency for occupancy.
            delay = self._delay_ms * self.grow
        else:
            delay = self._delay_ms
        self._delay_ms = float(min(self.ceiling_ms, max(self.floor_ms, delay)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(delay_ms={self._delay_ms:.3f}, "
            f"floor_ms={self.floor_ms}, ceiling_ms={self.ceiling_ms}, "
            f"slo_p95_ms={self.slo_p95_ms})"
        )
