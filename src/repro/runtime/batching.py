"""Micro-batching request front-end for the long-lived runtime.

The paper's deployment serves many concurrent B2B clients, each asking for
recommendations for a handful of users at a time.  Dispatching every such
request through :meth:`~repro.runtime.RecommenderRuntime.topn` individually
wastes the sharded serving machinery on tiny fan-outs: a four-user request
pays one executor round-trip for four rows of BLAS work, so under high
request concurrency the dispatch overhead — not the scoring — bounds
users/s.

:class:`BatchingFrontEnd` closes that gap with classic micro-batching:

* **accumulate** — :meth:`submit` / :meth:`submit_folded` enqueue a request
  and return a :class:`~concurrent.futures.Future` immediately; a dispatcher
  thread (:class:`~repro.parallel.executor.DispatcherThread`) holds the
  queue open until ``max_batch_users`` rows have gathered or the *oldest*
  request has waited ``max_delay_ms`` — whichever comes first, so a lone
  request is never held past the latency bound;
* **merge** — the sealed batch is grouped by request shape (known-user
  top-N vs fold-in cold-start, and by serving options), each group's user
  lists are flattened by :func:`~repro.serving.batch.merge_request_lists`,
  and one runtime call serves the merged list through the existing sharded
  descriptor path — the batch rides the same machinery, just with real
  occupancy;
* **scatter** — per-user rankings are sliced back per request
  (:func:`~repro.serving.batch.scatter_results`) and delivered through the
  futures as :class:`BatchedResponse` objects.

Generation safety: every batch is sealed against one
:class:`~repro.runtime.service.ServingSession`, pinned at dispatch time, so
all requests in a batch are answered by a single model version even when
:meth:`~repro.runtime.RecommenderRuntime.update` lands mid-flight — the
response records which generation served it.  Rankings are exactly the
unbatched per-request rankings (merging never changes per-row math; the
test-suite asserts ``np.array_equal`` request by request).

The front-end *borrows* the runtime: closing the front-end drains every
pending request and stops the dispatcher, but never closes the runtime —
close the front-end first, the runtime second (nested ``with`` blocks give
that order for free).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.parallel.executor import DispatcherThread
from repro.serving.batch import merge_request_lists, scatter_results
from repro.utils.validation import check_non_negative_float, check_positive_int


@dataclass(frozen=True)
class BatchedResponse:
    """What a coalesced request's future resolves to.

    Attributes
    ----------
    rankings:
        One ranked item array per requested row, aligned with the request's
        users (or fold-in interaction vectors) — exactly what the unbatched
        runtime call would have returned for this request alone.
    generation:
        The runtime generation the request's batch was served by.  Every
        request of one batch shares it: the batch was sealed against a
        pinned serving session.
    batch_id:
        Sequence number of the micro-batch this request rode.
    batch_requests:
        How many requests the batch coalesced.
    batch_users:
        Total merged rows in the batch (its occupancy).
    queue_seconds:
        How long this request waited between submission and dispatch —
        bounded by ``max_delay_ms`` plus the dispatch time of the batch in
        front of it.
    """

    rankings: List[np.ndarray]
    generation: int
    batch_id: int
    batch_requests: int
    batch_users: int
    queue_seconds: float


@dataclass(frozen=True)
class BatchingStats:
    """Aggregate front-end behaviour (complements the runtime's ServingStats).

    Attributes
    ----------
    batches:
        Micro-batches dispatched so far.
    requests:
        Requests coalesced into those batches.
    users:
        Total merged rows served (occupancy numerator).
    mean_occupancy:
        Mean merged rows per batch — the lever micro-batching exists to
        raise; 1.0 means batching bought nothing.
    mean_requests_per_batch:
        Mean requests coalesced per batch.
    queue_p50_ms / queue_p95_ms / queue_max_ms:
        Percentiles of request queue latency (submission to dispatch) over
        the recent-request window, in milliseconds.
    """

    batches: int
    requests: int
    users: int
    mean_occupancy: float
    mean_requests_per_batch: float
    queue_p50_ms: float
    queue_p95_ms: float
    queue_max_ms: float


class _Request:
    """One enqueued request: payload rows, serving options, and its future."""

    __slots__ = ("kind", "rows", "options", "future", "enqueued")

    def __init__(self, kind: str, rows: list, options: Tuple, future: Future) -> None:
        self.kind = kind
        self.rows = rows
        self.options = options
        self.future = future
        self.enqueued = time.monotonic()


#: Queue-latency samples retained for the percentile stats.
_LATENCY_WINDOW = 4096


class BatchingFrontEnd:
    """Coalesce concurrent small serving requests into micro-batches.

    Parameters
    ----------
    runtime:
        The :class:`~repro.runtime.RecommenderRuntime` to serve through
        (borrowed — never closed by the front-end).  It must have a
        published model version by the time requests are dispatched.
    max_delay_ms:
        Latency bound: the longest a sealed batch's *oldest* request is held
        waiting for company.  ``0`` dispatches every poll immediately
        (batching then only coalesces requests that were already queued
        together).
    max_batch_users:
        Size cap: a batch is sealed as soon as this many merged rows have
        gathered.  A single request larger than the cap is dispatched alone
        (requests are never split).

    Use as a context manager; :meth:`close` drains pending requests::

        with RecommenderRuntime(executor="process") as runtime:
            runtime.fit(model, matrix)
            runtime.publish()
            with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
                futures = [front.submit(req) for req in requests]
                lists = [f.result().rankings for f in futures]
    """

    def __init__(
        self,
        runtime,
        max_delay_ms: float = 5.0,
        max_batch_users: int = 256,
    ) -> None:
        self.max_delay_ms = check_non_negative_float(max_delay_ms, "max_delay_ms")
        self.max_batch_users = check_positive_int(max_batch_users, "max_batch_users")
        self._runtime = runtime
        self._cond = threading.Condition()
        self._pending: Deque[_Request] = deque()
        self._pending_rows = 0
        self._closed = False
        self._draining = False
        self._batches = 0
        self._requests = 0
        self._rows = 0
        self._queue_seconds: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        # Assign before starting: the loop's first step may run before
        # start() returns and reads self._dispatcher.
        self._dispatcher = DispatcherThread(
            self._dispatch_once,
            name="batching-dispatcher",
            wake=self._wake,
            on_failure=self._fail_pending,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def runtime(self):
        """The borrowed runtime requests are served through."""
        return self._runtime

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def pending_requests(self) -> int:
        """Requests currently queued (not yet sealed into a batch)."""
        with self._cond:
            return len(self._pending)

    def stats(self) -> BatchingStats:
        """A consistent snapshot of the front-end's aggregate behaviour."""
        with self._cond:
            batches = self._batches
            requests = self._requests
            rows = self._rows
            waits = list(self._queue_seconds)
        if waits:
            p50, p95 = np.percentile(waits, [50, 95])
            worst = max(waits)
        else:
            p50 = p95 = worst = 0.0
        return BatchingStats(
            batches=batches,
            requests=requests,
            users=rows,
            mean_occupancy=rows / batches if batches else 0.0,
            mean_requests_per_batch=requests / batches if batches else 0.0,
            queue_p50_ms=float(p50) * 1000.0,
            queue_p95_ms=float(p95) * 1000.0,
            queue_max_ms=float(worst) * 1000.0,
        )

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
    ) -> "Future[BatchedResponse]":
        """Enqueue a known-users top-N request; returns its future.

        The future resolves to a :class:`BatchedResponse` whose rankings are
        ``np.array_equal`` to ``runtime.topn(users, ...)`` run unbatched
        against the same model version.  Duplicate users — within the
        request or across concurrently queued requests — are fine; every
        request receives rankings for exactly the users it asked for.
        """
        check_positive_int(n_items, "n_items")
        rows = [int(user) for user in users]
        return self._enqueue("topn", rows, (n_items, bool(exclude_seen)))

    def submit_folded(
        self,
        interactions: Sequence[Sequence[int]],
        n_items: int = 10,
        exclude_seen: bool = True,
        n_sweeps: int = 30,
        tolerance: float = 1e-8,
    ) -> "Future[BatchedResponse]":
        """Enqueue a cold-start (fold-in) request; returns its future.

        ``interactions`` is one item-index list per unseen user — the
        list-of-lists form, which is the only one that can be merged across
        requests.  The future's rankings equal
        ``runtime.recommend_folded(interactions, ...)`` unbatched against
        the same model version.
        """
        check_positive_int(n_items, "n_items")
        check_positive_int(n_sweeps, "n_sweeps")
        rows = [
            [int(item) for item in np.asarray(list(items), dtype=np.int64).ravel()]
            for items in interactions
        ]
        return self._enqueue(
            "folded", rows, (n_items, bool(exclude_seen), n_sweeps, float(tolerance))
        )

    def topn_blocking(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
        timeout: Optional[float] = None,
    ) -> List[np.ndarray]:
        """Submit a top-N request and wait for its rankings (client shape)."""
        future = self.submit(users, n_items=n_items, exclude_seen=exclude_seen)
        return future.result(timeout=timeout).rankings

    def recommend_folded_blocking(
        self,
        interactions: Sequence[Sequence[int]],
        n_items: int = 10,
        exclude_seen: bool = True,
        n_sweeps: int = 30,
        tolerance: float = 1e-8,
        timeout: Optional[float] = None,
    ) -> List[np.ndarray]:
        """Submit a fold-in request and wait for its rankings."""
        future = self.submit_folded(
            interactions,
            n_items=n_items,
            exclude_seen=exclude_seen,
            n_sweeps=n_sweeps,
            tolerance=tolerance,
        )
        return future.result(timeout=timeout).rankings

    def _enqueue(self, kind: str, rows: list, options: Tuple) -> Future:
        future: Future = Future()
        request = _Request(kind, rows, options, future)
        with self._cond:
            if self._closed:
                raise ConfigurationError("the batching front-end is closed")
            failure = self._dispatcher.failure
            if failure is not None:  # pragma: no cover - defensive
                raise ConfigurationError(
                    "the batching dispatcher died; the front-end cannot accept "
                    "requests"
                ) from failure
            self._pending.append(request)
            self._pending_rows += len(rows)
            self._cond.notify_all()
        return future

    # ------------------------------------------------------------------ #
    # Dispatcher side
    # ------------------------------------------------------------------ #
    def _wake(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def _dispatch_once(self) -> None:
        """One dispatcher-loop iteration: seal a batch (or idle) and serve it."""
        batch = self._collect_batch()
        if not batch:
            return
        try:
            self._dispatch(batch)
        except BaseException as error:  # pragma: no cover - defensive
            # A sealed batch is no longer in the queue, so the loop-death
            # cleanup (_fail_pending) cannot see it: resolve its futures
            # here, then let the failure propagate to kill the loop.
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)
            raise

    def _collect_batch(self) -> List[_Request]:
        """Block until a batch is due, then seal and return it.

        A batch is due when ``max_batch_users`` merged rows are pending,
        when the oldest pending request has waited ``max_delay_ms``, or
        immediately when draining.  Returns ``[]`` on idle polls so the
        dispatcher loop stays responsive to stop requests.
        """
        with self._cond:
            while not self._pending:
                if self._draining or self._dispatcher.stop_requested:
                    return []
                self._cond.wait(timeout=0.05)
            deadline = self._pending[0].enqueued + self.max_delay_ms / 1000.0
            while (
                not self._draining
                and not self._dispatcher.stop_requested
                and self._pending_rows < self.max_batch_users
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch: List[_Request] = []
            rows = 0
            while self._pending:
                head = self._pending[0]
                if batch and rows + len(head.rows) > self.max_batch_users:
                    break  # leave for the next batch; never split a request
                self._pending.popleft()
                batch.append(head)
                rows += len(head.rows)
            self._pending_rows -= rows
            return batch

    def _dispatch(self, batch: List[_Request]) -> None:
        """Serve one sealed batch against a single pinned model version."""
        # Transition every future to RUNNING now: a client may have
        # cancelled while its request was queued (the future was PENDING),
        # and set_result on a cancelled future raises — which would kill the
        # dispatcher and strand every other waiter.  Cancelled requests are
        # simply dropped; the survivors can no longer be cancelled.
        batch = [
            request
            for request in batch
            if request.future.set_running_or_notify_cancel()
        ]
        if not batch:
            return
        dispatch_start = time.monotonic()
        batch_rows = sum(len(request.rows) for request in batch)
        with self._cond:
            self._batches += 1
            batch_id = self._batches
            self._requests += len(batch)
            self._rows += batch_rows
            for request in batch:
                self._queue_seconds.append(dispatch_start - request.enqueued)
        try:
            session = self._runtime.serving_session()
        except Exception as error:
            # No published model version (or a closed runtime): the whole
            # batch fails with the runtime's own diagnostic.
            for request in batch:
                request.future.set_exception(error)
            return
        with session:
            groups: Dict[Tuple, List[_Request]] = {}
            for request in batch:
                groups.setdefault((request.kind, request.options), []).append(request)
            for (kind, options), requests in groups.items():
                self._serve_group(
                    session,
                    kind,
                    options,
                    requests,
                    batch_id,
                    len(batch),
                    batch_rows,
                    dispatch_start,
                )

    def _serve_group(
        self,
        session,
        kind: str,
        options: Tuple,
        requests: List[_Request],
        batch_id: int,
        batch_requests: int,
        batch_users: int,
        dispatch_start: float,
    ) -> None:
        """Merge one option-group, serve it in a single runtime call, scatter.

        The whole body — merge, serve, scatter, delivery — is guarded: any
        exception resolves the group's futures instead of escaping into the
        dispatcher loop, where it would kill the thread and strand every
        other waiter.
        """
        try:
            merged, spans = merge_request_lists(
                [request.rows for request in requests]
            )
            if kind == "topn":
                n_items, exclude_seen = options
                result = session.topn(
                    merged, n_items=n_items, exclude_seen=exclude_seen
                )
                per_row = result.rankings
            else:
                n_items, exclude_seen, n_sweeps, tolerance = options
                per_row = session.recommend_folded(
                    merged,
                    n_items=n_items,
                    exclude_seen=exclude_seen,
                    n_sweeps=n_sweeps,
                    tolerance=tolerance,
                )
            for request, rankings in zip(requests, scatter_results(per_row, spans)):
                request.future.set_result(
                    BatchedResponse(
                        rankings=rankings,
                        generation=session.generation,
                        batch_id=batch_id,
                        batch_requests=batch_requests,
                        batch_users=batch_users,
                        queue_seconds=dispatch_start - request.enqueued,
                    )
                )
        except Exception as error:
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(error)

    def _fail_pending(self, cause: BaseException) -> None:
        """Resolve every queued future after the dispatcher loop died.

        Without this, requests already in the queue would keep PENDING
        futures forever — a client blocked in ``future.result()`` with no
        timeout would hang while only *new* submits learned of the failure.
        """
        with self._cond:
            leftovers = list(self._pending)
            self._pending.clear()
            self._pending_rows = 0
        for request in leftovers:  # pragma: no cover - requires a dead dispatcher
            if not request.future.done():
                failure = ConfigurationError(
                    "the batching dispatcher died before this request could "
                    "be dispatched"
                )
                failure.__cause__ = cause
                request.future.set_exception(failure)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Drain pending requests, stop the dispatcher; idempotent.

        New submissions are rejected immediately; every request already
        queued is dispatched (without further accumulation delay) and its
        future resolved before the dispatcher stops.  The runtime is
        untouched — it is borrowed.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            self._cond.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._dispatcher.is_alive:
            with self._cond:
                if not self._pending:
                    break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.002)
        # Share the remaining budget with the join: close(timeout=T) bounds
        # the WHOLE close at ~T, not drain-T plus another join-T.
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        self._dispatcher.stop(timeout=remaining)
        # Only reachable if the dispatcher died or the drain timed out:
        # fail any stragglers rather than leaving their futures hanging.
        with self._cond:
            leftovers = list(self._pending)
            self._pending.clear()
            self._pending_rows = 0
        for request in leftovers:  # pragma: no cover - requires a dead dispatcher
            if not request.future.done():
                request.future.set_exception(
                    ConfigurationError(
                        "the batching front-end closed before this request "
                        "could be dispatched"
                    )
                )

    def __enter__(self) -> "BatchingFrontEnd":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"pending={len(self._pending)}"
        return (
            f"{type(self).__name__}(max_delay_ms={self.max_delay_ms}, "
            f"max_batch_users={self.max_batch_users}, {state})"
        )
