"""Micro-batching request front-end for the long-lived runtime.

The paper's deployment serves many concurrent B2B clients, each asking for
recommendations for a handful of users at a time.  Dispatching every such
request through :meth:`~repro.runtime.RecommenderRuntime.recommend`
individually wastes the sharded serving machinery on tiny fan-outs: a
four-user request pays one executor round-trip for four rows of BLAS work,
so under high request concurrency the dispatch overhead — not the scoring —
bounds users/s.

:class:`BatchingFrontEnd` closes that gap with classic micro-batching:

* **accumulate** — :meth:`submit_request` enqueues a
  :class:`~repro.api.RecommendRequest` and returns a
  :class:`~concurrent.futures.Future` immediately; a dispatcher thread
  (:class:`~repro.parallel.executor.DispatcherThread`) holds the queue open
  until ``max_batch_users`` rows have gathered or the *oldest* request has
  waited the current accumulation delay — whichever comes first, so a lone
  request is never held past the latency bound;
* **merge** — the sealed batch is grouped by
  :attr:`~repro.api.RecommendRequest.options` (known-user top-N vs fold-in
  cold-start, and by serving options), each group's rows are flattened by
  :func:`~repro.serving.batch.merge_request_lists` into one merged request,
  and a single runtime call serves it through the existing sharded
  descriptor path — the batch rides the same machinery, just with real
  occupancy;
* **scatter** — per-row rankings (and scores, when asked) are sliced back
  per request (:func:`~repro.serving.batch.scatter_results`) and delivered
  through the futures as :class:`~repro.api.RecommendResponse` objects.

The accumulation delay is either the static ``max_delay_ms`` or — when an
:class:`~repro.runtime.adaptive.AdaptiveDelayController` is attached — a
live value the controller re-tunes against the arrival rate and the queue
latency SLO: shrinking toward its floor under light load (waiting buys no
occupancy, so don't), growing toward ``max_delay_ms`` under heavy load
while the queue-wait p95 stays inside the SLO.

Generation safety: every batch is sealed against one
:class:`~repro.runtime.service.ServingSession`, pinned at dispatch time, so
all requests in a batch are answered by a single model version even when
:meth:`~repro.runtime.RecommenderRuntime.update` lands mid-flight — the
response records which generation served it.  Rankings are exactly the
unbatched per-request rankings (merging never changes per-row math; the
test-suite asserts ``np.array_equal`` request by request).

The front-end *borrows* the runtime: closing the front-end drains every
pending request and stops the dispatcher, but never closes the runtime —
close the front-end first, the runtime second (nested ``with`` blocks give
that order for free).
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import deque
from concurrent.futures import Future
from dataclasses import asdict, dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import BatchedResponse, RecommendRequest, RecommendResponse
from repro.exceptions import ConfigurationError
from repro.parallel.executor import DispatcherThread
from repro.runtime.adaptive import AdaptiveDelayController
from repro.serving.batch import merge_request_lists, scatter_results
from repro.utils.validation import check_non_negative_float, check_positive_int

__all__ = [
    "BatchedResponse",
    "BatchingFrontEnd",
    "BatchingStats",
]


@dataclass(frozen=True)
class BatchingStats:
    """One consistent snapshot of the front-end's behaviour.

    Attributes
    ----------
    batches:
        Micro-batches dispatched so far.
    requests:
        Requests coalesced into those batches.
    users:
        Total merged rows served (occupancy numerator).
    mean_occupancy:
        Mean merged rows per batch — the lever micro-batching exists to
        raise; 1.0 means batching bought nothing.
    mean_requests_per_batch:
        Mean requests coalesced per batch.
    queue_p50_ms / queue_p95_ms / queue_max_ms:
        Percentiles of request queue latency (submission to dispatch) over
        the recent-request window, in milliseconds.
    current_delay_ms:
        The accumulation delay batches are currently held open for — the
        static ``max_delay_ms``, or the adaptive controller's live value.
    pending_requests:
        Requests queued at snapshot time (not yet sealed into a batch).
    arrival_rate_rps:
        Request submissions per second over the recent sliding window.
    """

    batches: int
    requests: int
    users: int
    mean_occupancy: float
    mean_requests_per_batch: float
    queue_p50_ms: float
    queue_p95_ms: float
    queue_max_ms: float
    current_delay_ms: float
    pending_requests: int
    arrival_rate_rps: float

    def as_dict(self) -> dict:
        """JSON-ready mapping (the gateway's ``stats`` frame embeds it)."""
        return asdict(self)


class _Pending:
    """One enqueued request with its future and submission timestamp."""

    __slots__ = ("request", "future", "enqueued")

    def __init__(self, request: RecommendRequest, future: Future) -> None:
        self.request = request
        self.future = future
        self.enqueued = time.monotonic()


#: Queue-latency / arrival samples retained for the windowed stats.
_LATENCY_WINDOW = 4096

#: Sliding window (seconds) for the arrival-rate estimate in :meth:`stats`.
_RATE_WINDOW_S = 2.0


class BatchingFrontEnd:
    """Coalesce concurrent small serving requests into micro-batches.

    Parameters
    ----------
    runtime:
        The :class:`~repro.runtime.RecommenderRuntime` to serve through
        (borrowed — never closed by the front-end).  It must have a
        published model version by the time requests are dispatched.
    max_delay_ms:
        Latency bound: the longest a sealed batch's *oldest* request is held
        waiting for company.  ``0`` dispatches every poll immediately
        (batching then only coalesces requests that were already queued
        together).  With an adaptive controller this is the delay's
        *ceiling*; the live value moves below it.
    max_batch_users:
        Size cap: a batch is sealed as soon as this many merged rows have
        gathered.  A single request larger than the cap is dispatched alone
        (requests are never split).
    adaptive:
        ``True`` to attach an :class:`AdaptiveDelayController` whose ceiling
        is ``max_delay_ms``, or a pre-built controller instance (its own
        ceiling then governs), or ``None``/``False`` for the static delay.

    Use as a context manager; :meth:`close` drains pending requests::

        with RecommenderRuntime(executor="process") as runtime:
            runtime.fit(model, matrix)
            runtime.publish()
            with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
                futures = [front.submit_request(req) for req in requests]
                lists = [f.result().rankings for f in futures]
    """

    def __init__(
        self,
        runtime,
        max_delay_ms: float = 5.0,
        max_batch_users: int = 256,
        adaptive=None,
    ) -> None:
        self.max_delay_ms = check_non_negative_float(max_delay_ms, "max_delay_ms")
        self.max_batch_users = check_positive_int(max_batch_users, "max_batch_users")
        if adaptive is None or adaptive is False:
            self._controller: Optional[AdaptiveDelayController] = None
        elif adaptive is True:
            # The static bound becomes the adaptive ceiling; the floor stays
            # at the controller default unless the ceiling is below it.
            controller = AdaptiveDelayController(
                floor_ms=min(0.5, max(max_delay_ms, 1e-3)),
                ceiling_ms=max(max_delay_ms, 1e-3),
            )
            self._controller = controller
        elif isinstance(adaptive, AdaptiveDelayController):
            self._controller = adaptive
        else:
            raise ConfigurationError(
                "adaptive must be True, an AdaptiveDelayController, or None"
            )
        self._runtime = runtime
        self._cond = threading.Condition()
        self._pending: Deque[_Pending] = deque()
        self._pending_rows = 0
        self._closed = False
        self._draining = False
        self._batches = 0
        self._requests = 0
        self._rows = 0
        self._queue_seconds: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._arrivals: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        # Assign before starting: the loop's first step may run before
        # start() returns and reads self._dispatcher.
        self._dispatcher = DispatcherThread(
            self._dispatch_once,
            name="batching-dispatcher",
            wake=self._wake,
            on_failure=self._fail_pending,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def runtime(self):
        """The borrowed runtime requests are served through."""
        return self._runtime

    @property
    def controller(self) -> Optional[AdaptiveDelayController]:
        """The attached adaptive delay controller, if any."""
        return self._controller

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def pending_requests(self) -> int:
        """Requests currently queued (not yet sealed into a batch)."""
        with self._cond:
            return len(self._pending)

    @property
    def current_delay_ms(self) -> float:
        """The accumulation delay batches are held open for right now."""
        if self._controller is not None:
            return self._controller.delay_ms
        return self.max_delay_ms

    def stats(self) -> BatchingStats:
        """A consistent snapshot of the front-end's aggregate behaviour."""
        now = time.monotonic()
        with self._cond:
            batches = self._batches
            requests = self._requests
            rows = self._rows
            waits = list(self._queue_seconds)
            pending = len(self._pending)
            horizon = now - _RATE_WINDOW_S
            rate = sum(1 for ts in self._arrivals if ts > horizon) / _RATE_WINDOW_S
        if waits:
            p50, p95 = np.percentile(waits, [50, 95])
            worst = max(waits)
        else:
            p50 = p95 = worst = 0.0
        return BatchingStats(
            batches=batches,
            requests=requests,
            users=rows,
            mean_occupancy=rows / batches if batches else 0.0,
            mean_requests_per_batch=requests / batches if batches else 0.0,
            queue_p50_ms=float(p50) * 1000.0,
            queue_p95_ms=float(p95) * 1000.0,
            queue_max_ms=float(worst) * 1000.0,
            current_delay_ms=self.current_delay_ms,
            pending_requests=pending,
            arrival_rate_rps=rate,
        )

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit_request(
        self, request: RecommendRequest
    ) -> "Future[RecommendResponse]":
        """Enqueue one request; returns the future of its response.

        The future resolves to a :class:`~repro.api.RecommendResponse`
        whose rankings are ``np.array_equal`` to
        ``runtime.recommend(request)`` run unbatched against the same model
        version.  Duplicate users — within the request or across
        concurrently queued requests — are fine; every request receives
        rankings for exactly the rows it asked for.
        """
        if not isinstance(request, RecommendRequest):
            raise ConfigurationError(
                f"submit_request takes a RecommendRequest, got {type(request).__name__}"
            )
        future: Future = Future()
        pending = _Pending(request, future)
        with self._cond:
            if self._closed:
                raise ConfigurationError("the batching front-end is closed")
            failure = self._dispatcher.failure
            if failure is not None:  # pragma: no cover - defensive
                raise ConfigurationError(
                    "the batching dispatcher died; the front-end cannot accept "
                    "requests"
                ) from failure
            self._pending.append(pending)
            self._pending_rows += request.n_rows
            self._arrivals.append(pending.enqueued)
            self._cond.notify_all()
        if self._controller is not None:
            self._controller.observe_arrival(pending.enqueued)
        return future

    def recommend(
        self, request: RecommendRequest, timeout: Optional[float] = None
    ) -> RecommendResponse:
        """Submit one request and block for its response (client shape)."""
        return self.submit_request(request).result(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Deprecated pre-gateway entrypoints (kept as shims)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
    ) -> "Future[RecommendResponse]":
        """Deprecated: use :meth:`submit_request` with a RecommendRequest."""
        warnings.warn(
            "BatchingFrontEnd.submit(users, ...) is deprecated; build a "
            "RecommendRequest(users=...) and call submit_request(request)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.submit_request(
            RecommendRequest(
                users=tuple(int(user) for user in users),
                n_items=n_items,
                exclude_seen=exclude_seen,
            )
        )

    def submit_folded(
        self,
        interactions: Sequence[Sequence[int]],
        n_items: int = 10,
        exclude_seen: bool = True,
        n_sweeps: int = 30,
        tolerance: float = 1e-8,
    ) -> "Future[RecommendResponse]":
        """Deprecated: use :meth:`submit_request` with a RecommendRequest."""
        warnings.warn(
            "BatchingFrontEnd.submit_folded(interactions, ...) is deprecated; "
            "build a RecommendRequest(interactions=...) and call "
            "submit_request(request)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.submit_request(
            RecommendRequest(
                interactions=tuple(
                    tuple(int(item) for item in np.asarray(list(items), dtype=np.int64).ravel())
                    for items in interactions
                ),
                n_items=n_items,
                exclude_seen=exclude_seen,
                n_sweeps=n_sweeps,
                tolerance=tolerance,
            )
        )

    def topn_blocking(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
        timeout: Optional[float] = None,
    ) -> List[np.ndarray]:
        """Deprecated: use :meth:`recommend` with a RecommendRequest."""
        warnings.warn(
            "BatchingFrontEnd.topn_blocking is deprecated; call "
            "recommend(RecommendRequest(users=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        request = RecommendRequest(
            users=tuple(int(user) for user in users),
            n_items=n_items,
            exclude_seen=exclude_seen,
        )
        return self.submit_request(request).result(timeout=timeout).rankings

    def recommend_folded_blocking(
        self,
        interactions: Sequence[Sequence[int]],
        n_items: int = 10,
        exclude_seen: bool = True,
        n_sweeps: int = 30,
        tolerance: float = 1e-8,
        timeout: Optional[float] = None,
    ) -> List[np.ndarray]:
        """Deprecated: use :meth:`recommend` with a RecommendRequest."""
        warnings.warn(
            "BatchingFrontEnd.recommend_folded_blocking is deprecated; call "
            "recommend(RecommendRequest(interactions=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        request = RecommendRequest(
            interactions=tuple(
                tuple(int(item) for item in np.asarray(list(items), dtype=np.int64).ravel())
                for items in interactions
            ),
            n_items=n_items,
            exclude_seen=exclude_seen,
            n_sweeps=n_sweeps,
            tolerance=tolerance,
        )
        return self.submit_request(request).result(timeout=timeout).rankings

    # ------------------------------------------------------------------ #
    # Dispatcher side
    # ------------------------------------------------------------------ #
    def _wake(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def _dispatch_once(self) -> None:
        """One dispatcher-loop iteration: seal a batch (or idle) and serve it."""
        batch = self._collect_batch()
        if not batch:
            return
        try:
            self._dispatch(batch)
        except BaseException as error:  # pragma: no cover - defensive
            # A sealed batch is no longer in the queue, so the loop-death
            # cleanup (_fail_pending) cannot see it: resolve its futures
            # here, then let the failure propagate to kill the loop.
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(error)
            raise

    def _collect_batch(self) -> List[_Pending]:
        """Block until a batch is due, then seal and return it.

        A batch is due when ``max_batch_users`` merged rows are pending,
        when the oldest pending request has waited the current accumulation
        delay (static or adaptive), or immediately when draining.  Returns
        ``[]`` on idle polls so the dispatcher loop stays responsive to stop
        requests.
        """
        with self._cond:
            while not self._pending:
                if self._draining or self._dispatcher.stop_requested:
                    return []
                self._cond.wait(timeout=0.05)
            while (
                not self._draining
                and not self._dispatcher.stop_requested
                and self._pending_rows < self.max_batch_users
            ):
                # Re-read the delay each pass: the adaptive controller may
                # have re-tuned it since the oldest request arrived.
                deadline = self._pending[0].enqueued + self.current_delay_ms / 1000.0
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch: List[_Pending] = []
            rows = 0
            while self._pending:
                head = self._pending[0]
                if batch and rows + head.request.n_rows > self.max_batch_users:
                    break  # leave for the next batch; never split a request
                self._pending.popleft()
                batch.append(head)
                rows += head.request.n_rows
            self._pending_rows -= rows
            return batch

    def _dispatch(self, batch: List[_Pending]) -> None:
        """Serve one sealed batch against a single pinned model version."""
        # Transition every future to RUNNING now: a client may have
        # cancelled while its request was queued (the future was PENDING),
        # and set_result on a cancelled future raises — which would kill the
        # dispatcher and strand every other waiter.  Cancelled requests are
        # simply dropped; the survivors can no longer be cancelled.
        batch = [
            pending
            for pending in batch
            if pending.future.set_running_or_notify_cancel()
        ]
        if not batch:
            return
        dispatch_start = time.monotonic()
        waits = [dispatch_start - pending.enqueued for pending in batch]
        batch_rows = sum(pending.request.n_rows for pending in batch)
        with self._cond:
            self._batches += 1
            batch_id = self._batches
            self._requests += len(batch)
            self._rows += batch_rows
            self._queue_seconds.extend(waits)
        if self._controller is not None:
            self._controller.observe_batch(dispatch_start, waits)
        try:
            session = self._runtime.serving_session()
        except Exception as error:
            # No published model version (or a closed runtime): the whole
            # batch fails with the runtime's own diagnostic.
            for pending in batch:
                pending.future.set_exception(error)
            return
        with session:
            groups: Dict[Tuple, List[_Pending]] = {}
            for pending in batch:
                groups.setdefault(pending.request.options, []).append(pending)
            for group in groups.values():
                self._serve_group(
                    session, group, batch_id, len(batch), batch_rows, dispatch_start
                )

    def _serve_group(
        self,
        session,
        group: List[_Pending],
        batch_id: int,
        batch_requests: int,
        batch_users: int,
        dispatch_start: float,
    ) -> None:
        """Merge one option-group, serve it in a single runtime call, scatter.

        The whole body — merge, serve, scatter, delivery — is guarded: any
        exception resolves the group's futures instead of escaping into the
        dispatcher loop, where it would kill the thread and strand every
        other waiter.
        """
        try:
            merged_rows, spans = merge_request_lists(
                [pending.request.rows for pending in group]
            )
            merged = group[0].request.merged_with_rows(merged_rows)
            response = session.recommend(merged)
            per_row = scatter_results(response.rankings, spans)
            per_row_scores = (
                scatter_results(response.scores, spans)
                if response.scores is not None
                else [None] * len(group)
            )
            for pending, rankings, scores in zip(group, per_row, per_row_scores):
                pending.future.set_result(
                    RecommendResponse(
                        rankings=rankings,
                        generation=response.generation,
                        scores=scores,
                        queue_ms=(dispatch_start - pending.enqueued) * 1000.0,
                        serve_ms=response.serve_ms,
                        batch_id=batch_id,
                        batch_requests=batch_requests,
                        batch_users=batch_users,
                    )
                )
        except Exception as error:
            for pending in group:
                if not pending.future.done():
                    pending.future.set_exception(error)

    def _fail_pending(self, cause: BaseException) -> None:
        """Resolve every queued future after the dispatcher loop died.

        Without this, requests already in the queue would keep PENDING
        futures forever — a client blocked in ``future.result()`` with no
        timeout would hang while only *new* submits learned of the failure.
        """
        with self._cond:
            leftovers = list(self._pending)
            self._pending.clear()
            self._pending_rows = 0
        for pending in leftovers:  # pragma: no cover - requires a dead dispatcher
            if not pending.future.done():
                failure = ConfigurationError(
                    "the batching dispatcher died before this request could "
                    "be dispatched"
                )
                failure.__cause__ = cause
                pending.future.set_exception(failure)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Drain pending requests, stop the dispatcher; idempotent.

        New submissions are rejected immediately; every request already
        queued is dispatched (without further accumulation delay) and its
        future resolved before the dispatcher stops.  The runtime is
        untouched — it is borrowed.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            self._cond.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._dispatcher.is_alive:
            with self._cond:
                if not self._pending:
                    break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.002)
        # Share the remaining budget with the join: close(timeout=T) bounds
        # the WHOLE close at ~T, not drain-T plus another join-T.
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        self._dispatcher.stop(timeout=remaining)
        # Only reachable if the dispatcher died or the drain timed out:
        # fail any stragglers rather than leaving their futures hanging.
        with self._cond:
            leftovers = list(self._pending)
            self._pending.clear()
            self._pending_rows = 0
        for pending in leftovers:  # pragma: no cover - requires a dead dispatcher
            if not pending.future.done():
                pending.future.set_exception(
                    ConfigurationError(
                        "the batching front-end closed before this request "
                        "could be dispatched"
                    )
                )

    def __enter__(self) -> "BatchingFrontEnd":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"pending={len(self._pending)}"
        return (
            f"{type(self).__name__}(max_delay_ms={self.max_delay_ms}, "
            f"max_batch_users={self.max_batch_users}, {state})"
        )
