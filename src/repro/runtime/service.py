"""The long-lived recommender runtime: warm pools + published serving state.

The paper's deployment (Section VIII) is a persistent service: models are
retrained on a schedule and serve heavy top-N traffic in between.  The
one-shot lifecycle of ``OCuLaR(...).fit(...)`` cannot express that — every
name-configured fit builds a worker pool, uses it for one fit, and tears it
down (correct for ``/dev/shm`` hygiene, wasteful for a service that refits
hourly), and every ``serve_sharded`` call republishes or pickles its engine.

:class:`RecommenderRuntime` owns the long-lived resources exactly once:

* **one warm executor** (resolved through the
  :mod:`repro.parallel.scheduler` registry) lives for the whole runtime and
  is *borrowed* — never shut down — by everything the runtime drives:
  :meth:`fit` / :meth:`refit` thread it through the trainer via a borrowed
  :class:`~repro.core.backends.ParallelBackend`, fold-in sweeps run on it,
  and serving shards fan out on it.  Pool start-up is paid once, not once
  per fit (``benchmarks/bench_runtime.py`` measures the difference);

* **one publication per model version**: :meth:`publish` pushes the trained
  factor matrices and the CSR seen-mask through the
  :class:`~repro.parallel.shared_memory.SharedArraySpec` machinery, so every
  process-sharded :meth:`topn` / :meth:`recommend_folded` call ships only
  ``(row_range, descriptors)`` — no factor bytes per task — and workers
  attach zero-copy.  Rankings are byte-identical to the single-process
  :class:`~repro.serving.engine.TopNEngine`;

* **generation swap semantics**: :meth:`update` republishes under a fresh
  generation and retires the old one — unlinked immediately when idle, or
  when its last in-flight serving call drains (each call holds a reference
  on the generation it snapshotted), so a swap never races a worker that
  has yet to attach.  Workers prune stale attachments when the new
  generation reaches them.  On :meth:`close` (or context exit) the owned
  executor is drained and every segment unlinked — ``/dev/shm`` is
  verifiably clean afterwards, which the test-suite asserts.
"""

from __future__ import annotations

import inspect
import os
import pickle
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.api import RecommendRequest, RecommendResponse
from repro.core.backends import ParallelBackend
from repro.core.objective import full_objective
from repro.data.interactions import InteractionMatrix
from repro.exceptions import ConfigurationError, NotFittedError
from repro.parallel import ShardScheduler, supports_publication
from repro.serving.batch import BatchServingResult, _serve_shard
from repro.serving.engine import DEFAULT_CHUNK_SIZE, TopNEngine
from repro.core.factors import FactorModel
from repro.serving.fold_in import _interactions_to_csr, extend_factors, fold_in_scores
from repro.serving.results import TopNResult
from repro.serving.shared import (
    SharedEngineSpec,
    _rank_scored_shard,
    _topn_shard,
    next_generation,
    publish_csr,
    publish_engine,
    unpublish_engine,
)
from repro.utils.validation import check_positive_int


#: Plateau tolerance a warm :meth:`RecommenderRuntime.refit` passes to the
#: trainer when the caller does not choose one.  Loose relative to the strict
#: convergence tolerance on purpose: a warm start lands near the optimum, so
#: the refit should stop after the few sweeps that still move the objective.
#: The value matches the incremental-refit study's validated default.
DEFAULT_WARM_PLATEAU_TOLERANCE = 3e-4


def _probe_pid(task_index: int) -> int:
    """Worker-side probe used by :meth:`RecommenderRuntime.worker_pids`.

    The short sleep keeps the probe task alive long enough that the pool
    spreads the batch over several workers instead of letting one worker
    drain the queue.
    """
    time.sleep(0.005)
    return os.getpid()


@dataclass(frozen=True)
class ServingStats:
    """How the last serving call was dispatched (introspection for tests).

    Attributes
    ----------
    path:
        ``"shared"`` when shards carried only shm descriptors, ``"local"``
        when the engine ran in (or was shipped from) the calling process.
    n_shards:
        Number of shard tasks dispatched.
    generation:
        Generation of the published engine the call served from (shared
        path only).
    spec_bytes:
        Pickled size of the :class:`~repro.serving.shared.SharedEngineSpec`
        — the entire model-dependent payload of a shared-path task.  A few
        hundred bytes regardless of model size; compare with the megabytes
        a pickled engine costs per task.
    max_task_bytes:
        Pickled size of the largest complete task tuple (descriptors plus
        the shard's user list / row range).
    """

    path: str
    n_shards: int
    generation: Optional[int] = None
    spec_bytes: Optional[int] = None
    max_task_bytes: Optional[int] = None


@dataclass(frozen=True)
class IngestStats:
    """Result of one :meth:`RecommenderRuntime.ingest` delta.

    Attributes
    ----------
    n_pairs:
        Positive pairs in the delta (including re-sent existing pairs, which
        are idempotent).
    n_new_users, n_new_items:
        Rows / columns appended by the delta.
    n_users, n_items, nnz:
        Shape and positive count of the grown corpus after the delta.
    drift:
        Interaction drift since the last full (cold) fit — the fraction of
        the corpus's positives that arrived after that fit.  This is the
        quantity ``refit(mode="auto")`` compares against ``drift_threshold``.
    """

    n_pairs: int
    n_new_users: int
    n_new_items: int
    n_users: int
    n_items: int
    nnz: int
    drift: float


@dataclass(frozen=True)
class _PublishedSolver:
    """Frozen fold-in view of one model version, captured at publish time.

    Serving must keep answering from the published version even after the
    runtime refits the *same model object* (which replaces its ``factors_``
    in place on the instance).  This snapshot pins the
    :class:`~repro.core.factors.FactorModel` and the solver constants the
    fold-in subproblem needs; it quacks like a fitted model for
    :func:`~repro.serving.fold_in.fold_in_users`.
    """

    factors_: FactorModel
    regularization: float
    sigma: float
    beta: float
    max_backtracks: int


class ServingSession:
    """A pinned view of one published model version.

    Acquired through :meth:`RecommenderRuntime.serving_session`: the session
    takes one in-flight reference on the generation published at acquisition
    time, and every :meth:`topn` / :meth:`recommend_folded` routed through it
    serves **that** version — even if :meth:`RecommenderRuntime.update`
    swaps the runtime to a newer generation mid-flight (the pinned
    generation's segments stay attachable until the session releases).  This
    is the generation-safety hook the micro-batching front-end builds on: a
    micro-batch is sealed against one session, so every request in it is
    answered by the model version the batch was formed against.

    Use as a context manager (or call :meth:`release` exactly once)::

        with runtime.serving_session() as session:
            result = session.topn(users, n_items=10)
    """

    def __init__(self, runtime: "RecommenderRuntime") -> None:
        self._runtime = runtime
        (
            self._engine,
            self._spec,
            self._model,
            self._generation,
        ) = runtime._serving_snapshot()
        self._released = False
        # Guards the release flag: sessions may be shared across threads
        # (the documented "series of calls" shape), so release() must be
        # atomic and a call must never acquire after release dropped the
        # session's reference.
        self._lock = threading.Lock()

    @property
    def generation(self) -> int:
        """The runtime generation this session is pinned to."""
        return self._generation

    @property
    def released(self) -> bool:
        """Whether :meth:`release` has run."""
        return self._released

    def _acquire_for_call(self):
        """Snapshot plus one per-call generation reference (caller releases).

        The extra reference means a concurrent :meth:`release` — or another
        thread's call finishing — can never drop the pinned generation to
        zero while this call is between snapshot and worker attach.
        """
        with self._lock:
            if self._released:
                raise ConfigurationError("the serving session has been released")
            self._runtime._acquire_spec(self._spec)
        return self._engine, self._spec, self._model, self._generation

    def recommend(
        self, request: RecommendRequest, shard_size: Optional[int] = None
    ) -> RecommendResponse:
        """:meth:`RecommenderRuntime.recommend` against the pinned generation."""
        return self._runtime.recommend(request, session=self, shard_size=shard_size)

    def topn(self, users: Sequence[int], **kwargs) -> BatchServingResult:
        """Deprecated: use :meth:`recommend` with a known-users request."""
        warnings.warn(
            "ServingSession.topn() is deprecated; use "
            "session.recommend(RecommendRequest(users=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        user_list, rankings, _scores, n_shards, _generation = self._runtime._serve_topn(
            users, session=self, **kwargs
        )
        return BatchServingResult(users=user_list, rankings=rankings, n_shards=n_shards)

    def recommend_folded(self, interactions, **kwargs) -> List[np.ndarray]:
        """Deprecated: use :meth:`recommend` with an interactions request."""
        warnings.warn(
            "ServingSession.recommend_folded() is deprecated; use "
            "session.recommend(RecommendRequest(interactions=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        rankings, _scores, _n_shards, _generation = self._runtime._serve_folded(
            interactions, session=self, **kwargs
        )
        return rankings

    def release(self) -> None:
        """Drop the session's generation reference; idempotent.

        If the generation was retired by a swap while the session was open,
        its segments unlink when the last reference (possibly this one)
        drains — exactly like a long-running direct serving call.
        """
        with self._lock:
            if self._released:
                return
            self._released = True
        self._runtime._release_spec(self._spec)

    def __enter__(self) -> "ServingSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self._released else "pinned"
        return f"{type(self).__name__}(generation={self._generation}, {state})"


class RecommenderRuntime:
    """Warm-pool training and zero-copy serving under one lifecycle.

    Parameters
    ----------
    executor:
        Executor name from the :mod:`repro.parallel.scheduler` registry
        (``"process"`` — the default and the reason this class exists —
        ``"thread"`` or ``"serial"``), or a prebuilt instance.  A name is
        owned: the runtime builds the executor once and shuts it down in
        :meth:`close`.  An instance is borrowed: the runtime unpublishes its
        own segments on close but leaves the executor running.
    max_workers:
        Pool size for a name-built executor (default: the CPU count).
    n_shards:
        Shards per training sweep and default serving fan-out width
        (default: the pool size).
    chunk_size:
        Users per BLAS call inside the serving engine (and the default
        serving shard size, so one shard is one chunk in the worker).
    drift_threshold:
        Interaction-drift ceiling for ``refit(mode="auto")``: while the
        fraction of positives ingested since the last full fit stays at or
        below this value, auto refits warm-start from the previous
        generation's factors; beyond it they fall back to a full cold
        retrain (default 0.25).

    Typical service loop::

        with RecommenderRuntime(executor="process", max_workers=8) as runtime:
            runtime.fit(OCuLaR(n_coclusters=100, regularization=10.0), matrix)
            runtime.publish()                       # model version 1 serves
            lists = runtime.topn(range(matrix.n_users), n_items=10)
            ...
            runtime.refit(new_matrix)               # same warm pool
            runtime.update()                        # swap to version 2
        # pool drained, every /dev/shm segment unlinked
    """

    def __init__(
        self,
        executor="process",
        max_workers: Optional[int] = None,
        n_shards: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        drift_threshold: float = 0.25,
        serving_dtype=None,
    ) -> None:
        # Validate everything cheap BEFORE the scheduler builds the executor
        # — a pool spawned and then abandoned by a constructor error would
        # leak worker processes with no handle to close them.
        if n_shards is not None:
            check_positive_int(n_shards, "n_shards")
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        # Serving precision for every published engine: None serves in the
        # trained dtype (bit-exact); "float32" halves serving bandwidth and
        # the published /dev/shm footprint (see TopNEngine's dtype docs).
        self.serving_dtype = None if serving_dtype is None else str(np.dtype(serving_dtype))
        if not (isinstance(drift_threshold, (int, float)) and drift_threshold >= 0):
            raise ConfigurationError(
                f"drift_threshold must be a non-negative number, got {drift_threshold!r}"
            )
        self.drift_threshold = float(drift_threshold)
        self._scheduler = ShardScheduler(executor, max_workers=max_workers)
        # Built eagerly: the runtime's whole point is holding the pool warm.
        self._executor = self._scheduler.executor
        if n_shards is None:
            n_shards = (
                getattr(self._executor, "max_workers", None)
                or max_workers
                or os.cpu_count()
                or 1
            )
        self.n_shards = int(n_shards)
        # Borrowed by every fit and fold-in this runtime runs: the trainer's
        # BackendLease sees an instance and never shuts it down.
        self._backend = ParallelBackend(n_shards=self.n_shards, executor=self._executor)
        self.model = None
        self.train_matrix = None
        self.generation = 0
        # Drift bookkeeping for the incremental-refit policy: the corpus
        # size at (and per-interaction objective of) the last *full* fit.
        self._full_fit_nnz: Optional[int] = None
        self._baseline_objective_per_nnz: Optional[float] = None
        self.last_refit_mode: Optional[str] = None
        # Sharded serving dispatches this runtime has performed — the
        # coalescing ratio of a batching front-end is visible as
        # serving_calls << requests submitted.
        self.serving_calls = 0
        self.last_serving_stats: Optional[ServingStats] = None
        self._engine: Optional[TopNEngine] = None
        self._published: Optional[SharedEngineSpec] = None
        self._published_model = None
        # Serving calls in flight per publication generation, and retired
        # generations whose unlink waits for their last in-flight call — a
        # swap must never pull segments out from under a call that already
        # snapshotted them (a worker that had not attached yet would fail).
        self._inflight: Dict[int, int] = {}
        self._retired: Dict[int, SharedEngineSpec] = {}
        self._swap_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def executor(self):
        """The warm executor every fit and serving call runs on."""
        return self._executor

    @property
    def backend(self) -> ParallelBackend:
        """The warm training backend (borrowed by fits; never torn down by them)."""
        return self._backend

    @property
    def engine(self) -> Optional[TopNEngine]:
        """The serving engine of the currently published model version."""
        return self._engine

    @property
    def published_spec(self) -> Optional[SharedEngineSpec]:
        """Descriptors of the published generation (``None`` on the local path)."""
        return self._published

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def worker_pids(self, n_probes: Optional[int] = None) -> Set[int]:
        """PIDs observed executing probe tasks on the warm pool.

        For a process executor this is a subset of the pool's worker PIDs —
        stable across fits iff the pool is genuinely warm, which the
        test-suite asserts.  Thread and serial executors report the calling
        process.
        """
        self._check_open()
        if n_probes is None:
            n_probes = 4 * (getattr(self._executor, "max_workers", None) or 1)
        return set(self._executor.map(_probe_pid, range(n_probes)))

    # ------------------------------------------------------------------ #
    # Training on the warm pool
    # ------------------------------------------------------------------ #
    def fit(self, model, matrix, callback=None, **fit_kwargs):
        """Fit ``model`` on ``matrix`` using the runtime's warm pool.

        Models whose ``fit`` accepts a ``backend`` override (the OCuLaR
        family) train through the runtime's borrowed
        :class:`~repro.core.backends.ParallelBackend` — their own configured
        backend is neither used nor modified, and the pool survives the fit.
        Other recommenders (the baselines) fit as themselves.  The fitted
        model becomes the runtime's current model; call :meth:`publish` to
        serve it.

        Extra keyword arguments are forwarded to ``model.fit`` when its
        signature accepts them (``initial_factors``, ``plateau_tolerance``,
        ...); an unsupported one raises
        :class:`~repro.exceptions.ConfigurationError` instead of silently
        changing what the fit means.  A fit **without** ``initial_factors``
        is a full fit and resets the drift baseline :attr:`drift` and
        ``refit(mode="auto")`` measure against.
        """
        self._check_open()
        parameters = inspect.signature(model.fit).parameters
        kwargs = {}
        if "backend" in parameters:
            kwargs["backend"] = self._backend
        if callback is not None:
            kwargs["callback"] = callback
        for name, value in fit_kwargs.items():
            if name not in parameters:
                raise ConfigurationError(
                    f"{type(model).__name__}.fit does not accept {name!r}"
                )
            kwargs[name] = value
        model.fit(matrix, **kwargs)
        self.model = model
        self.train_matrix = matrix
        if fit_kwargs.get("initial_factors") is None:
            self._reset_drift_baseline(model, matrix)
        # The fit's plan arrays are dead weight between fits; drop them now
        # instead of letting them ride the executor's LRU.  Scoped to the
        # warm backend's own keys (and serialised against its in-flight
        # sweeps), so concurrent fold-ins and other executor users are
        # untouched.
        self._backend.release_published()
        return model

    def refit(
        self,
        matrix=None,
        callback=None,
        mode: str = "cold",
        plateau_tolerance: Optional[float] = None,
        plateau_patience: Optional[int] = None,
    ):
        """Refit the current model (on ``matrix`` or the stored one), warm pool.

        Parameters
        ----------
        matrix:
            Corpus to refit on; defaults to the stored one — which includes
            every delta :meth:`ingest` has accumulated.
        mode:
            ``"cold"`` (default, and the exact pre-incremental behaviour):
            retrain from fresh random factors with the model's configured
            stopping rule.  ``"warm"``: seed from the previous generation's
            factors, extended to the target corpus via
            :func:`~repro.serving.fold_in.extend_factors` (new users folded
            in against the old catalogue, new items against the extended
            users), and stop on objective plateau
            (:data:`DEFAULT_WARM_PLATEAU_TOLERANCE` unless overridden).
            ``"auto"``: warm while :attr:`drift` is at or below
            :attr:`drift_threshold`, cold beyond it — the policy loop of a
            deployment that ingests continuously.
        plateau_tolerance, plateau_patience:
            Optional overrides of the warm path's plateau early-stop; unused
            on the cold path.

        The resolved mode of the last refit is recorded in
        :attr:`last_refit_mode`.
        """
        if self.model is None:
            raise NotFittedError("refit requires a previous runtime.fit")
        target = self.train_matrix if matrix is None else matrix
        if target is None:
            raise ConfigurationError("refit needs a matrix (none stored)")
        if mode not in ("warm", "cold", "auto"):
            raise ConfigurationError(
                f"refit mode must be 'warm', 'cold' or 'auto', got {mode!r}"
            )
        warm_capable = (
            getattr(self.model, "is_fitted", False)
            and "initial_factors" in inspect.signature(self.model.fit).parameters
        )
        resolved = mode
        if mode == "auto":
            resolved = (
                "warm"
                if warm_capable and self.drift <= self.drift_threshold
                else "cold"
            )
        if resolved == "warm":
            if not warm_capable:
                raise ConfigurationError(
                    "warm refit requires a fitted model whose fit() accepts "
                    f"initial_factors; {type(self.model).__name__} does not"
                )
            initial = extend_factors(self.model, target, backend=self._backend)
            kwargs = dict(
                initial_factors=initial,
                plateau_tolerance=(
                    DEFAULT_WARM_PLATEAU_TOLERANCE
                    if plateau_tolerance is None
                    else plateau_tolerance
                ),
            )
            if plateau_patience is not None:
                kwargs["plateau_patience"] = plateau_patience
            result = self.fit(self.model, target, callback=callback, **kwargs)
        else:
            result = self.fit(self.model, target, callback=callback)
        self.last_refit_mode = resolved
        return result

    # ------------------------------------------------------------------ #
    # Delta ingestion / drift
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        pairs: Sequence[Tuple[int, int]],
        n_new_users: int = 0,
        n_new_items: int = 0,
    ) -> IngestStats:
        """Accumulate a delta of interactions (and new users/items) into the corpus.

        The stored training matrix is replaced by its
        :meth:`~repro.data.interactions.InteractionMatrix.extended_with`
        extension — pure CSR concatenation, no densification, the published
        serving generation untouched.  New users become servable
        **immediately**: :meth:`recommend` detects users beyond the published
        generation's corpus and routes them through the fold-in path using
        their ingested interactions (new *items* enter rankings only after
        the next ``refit`` + ``update``).  The returned stats carry the
        accumulated :attr:`drift`, which ``refit(mode="auto")`` uses to
        choose between a warm and a cold retrain.
        """
        self._check_open()
        if self.train_matrix is None:
            raise NotFittedError(
                "ingest requires a corpus; run runtime.fit(model, matrix) first"
            )
        if not isinstance(self.train_matrix, InteractionMatrix):
            raise ConfigurationError(
                "ingest requires the stored corpus to be an InteractionMatrix, "
                f"got {type(self.train_matrix).__name__}"
            )
        pair_list = [(int(user), int(item)) for user, item in pairs]
        extended = self.train_matrix.extended_with(
            pair_list, n_new_users=n_new_users, n_new_items=n_new_items
        )
        with self._swap_lock:
            self.train_matrix = extended
        return IngestStats(
            n_pairs=len(pair_list),
            n_new_users=int(n_new_users),
            n_new_items=int(n_new_items),
            n_users=extended.n_users,
            n_items=extended.n_items,
            nnz=extended.nnz,
            drift=self.drift,
        )

    @property
    def drift(self) -> float:
        """Fraction of positives ingested since the last full (cold) fit.

        ``(nnz_now - nnz_at_full_fit) / nnz_at_full_fit`` — the cheap,
        always-available signal ``refit(mode="auto")`` thresholds on.  Zero
        before any full fit or ingest.
        """
        if self._full_fit_nnz is None or self.train_matrix is None:
            return 0.0
        nnz = getattr(self.train_matrix, "nnz", None)
        if nnz is None:
            return 0.0
        return (int(nnz) - self._full_fit_nnz) / max(self._full_fit_nnz, 1)

    def objective_drift(self) -> float:
        """Relative change of the per-interaction objective on the grown corpus.

        Extends the current model's factors to the stored corpus (fold-in of
        any new users/items, existing rows unchanged) and evaluates the
        training objective per positive interaction, relative to the value
        the last full fit ended at.  A direct measure of how stale the
        factors are — more faithful than :attr:`drift` but it costs fold-in
        sweeps plus one objective evaluation, so the auto policy uses
        :attr:`drift` and this stays a diagnostic.
        """
        self._check_open()
        if self.model is None or not getattr(self.model, "is_fitted", False):
            raise NotFittedError("objective_drift requires a fitted model")
        if self.train_matrix is None or not isinstance(
            self.train_matrix, InteractionMatrix
        ):
            raise ConfigurationError(
                "objective_drift requires an InteractionMatrix corpus"
            )
        if self._baseline_objective_per_nnz is None:
            raise NotFittedError(
                "objective_drift requires a full fit with a training history "
                "as its baseline"
            )
        matrix = self.train_matrix
        # Verbatim extension (interior=0.0): the diagnostic must evaluate the
        # current factors as they are, not the interior-lifted warm seed.
        factors = extend_factors(
            self.model, matrix, backend=self._backend, interior=0.0
        )
        objective = full_objective(
            matrix.csr(),
            factors.user_factors,
            factors.item_factors,
            getattr(self.model, "regularization", 0.0),
        )
        per_nnz = objective / max(matrix.nnz, 1)
        baseline = self._baseline_objective_per_nnz
        return (per_nnz - baseline) / max(abs(baseline), 1e-12)

    def _reset_drift_baseline(self, model, matrix) -> None:
        """Record the corpus size and objective level of a full fit."""
        nnz = getattr(matrix, "nnz", None)
        self._full_fit_nnz = int(nnz) if nnz is not None else None
        history = getattr(model, "history_", None)
        objective_values = getattr(history, "objective_values", None)
        if objective_values and self._full_fit_nnz:
            self._baseline_objective_per_nnz = objective_values[-1] / self._full_fit_nnz
        else:
            self._baseline_objective_per_nnz = None

    # ------------------------------------------------------------------ #
    # Publication / model-version swap
    # ------------------------------------------------------------------ #
    def publish(self, model=None) -> int:
        """Make ``model`` (default: the last fitted) the serving version.

        Builds the serving engine and — on a shared-memory process executor
        with a factor-path engine — publishes its factor matrices and CSR
        seen-mask once, under a fresh generation.  The previously published
        generation is unlinked after the swap — immediately when idle, or as
        soon as its last in-flight serving call completes (each call holds a
        reference on the generation it snapshotted, so a swap can never pull
        segments out from under it).  Returns the runtime's generation
        number.
        """
        self._check_open()
        model = self.model if model is None else model
        if model is None or not getattr(model, "is_fitted", False):
            raise NotFittedError("publish requires a fitted model")
        engine = TopNEngine.from_model(
            model, chunk_size=self.chunk_size, dtype=self.serving_dtype
        )
        spec = None
        if supports_publication(self._executor) and engine.factors is not None:
            spec = publish_engine(self._executor, engine)
        factors = getattr(model, "factors_", None)
        solver = (
            _PublishedSolver(
                factors_=factors,
                regularization=getattr(model, "regularization", 0.0),
                sigma=getattr(model, "sigma", 0.1),
                beta=getattr(model, "beta", 0.5),
                max_backtracks=getattr(model, "max_backtracks", 20),
            )
            if isinstance(factors, FactorModel)
            else None
        )
        with self._swap_lock:
            previous = self._published
            self.model = model
            self._engine = engine
            self._published = spec
            self._published_model = solver
            self.generation += 1
            generation = self.generation
            if previous is not None and self._inflight.get(previous.generation):
                # Unlink deferred to _release_spec of the last in-flight call.
                self._retired[previous.generation] = previous
                previous = None
        if previous is not None:
            unpublish_engine(self._executor, previous)
        return generation

    def update(self, model=None) -> int:
        """Swap the serving state to a new model version.

        Alias of :meth:`publish` with swap-first phrasing: republishes the
        segments under a new generation and unlinks the old one.
        """
        return self.publish(model)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serving_session(self) -> ServingSession:
        """Pin the currently published model version for a series of calls.

        Returns a :class:`ServingSession` holding one in-flight reference on
        the current generation; calls routed through the session keep
        serving that version across concurrent :meth:`update` swaps.  The
        caller must release the session (context manager or
        :meth:`ServingSession.release`).
        """
        self._check_open()
        return ServingSession(self)

    def recommend(
        self,
        request: RecommendRequest,
        session: Optional[ServingSession] = None,
        shard_size: Optional[int] = None,
    ) -> RecommendResponse:
        """Serve one :class:`~repro.api.RecommendRequest` — the unified entrypoint.

        Dispatches per request kind: known users (``request.users``) go down
        the sharded top-N path, cold-start rows (``request.interactions``)
        down the fold-in path.  Rankings are ``np.array_equal`` to the
        single-process :class:`~repro.serving.engine.TopNEngine` for the
        same model version.  Thread-safe: concurrent calls may interleave
        with :meth:`update` and each call serves one consistent model
        version — the currently published one, or the one pinned by
        ``session`` when given (the session then owns the generation
        reference; this call does not release it).  ``shard_size`` is an
        operational knob (rows per worker task), not part of the request.
        """
        if not isinstance(request, RecommendRequest):
            raise ConfigurationError(
                f"recommend() takes a RecommendRequest, got {type(request).__name__}"
            )
        started = time.perf_counter()
        if request.kind == "topn":
            # Users ingested after the published generation's fit are not in
            # its factor matrix; they are served through the fold-in path
            # (their ingested interactions against the published factors),
            # pinned to the same generation as everyone else in the request.
            reference = session._engine if session is not None else self._engine
            if reference is not None and any(
                int(user) >= reference.train_matrix.n_users for user in request.users
            ):
                return self._recommend_mixed(request, session, shard_size, started)
            _users, rankings, scores, _n_shards, generation = self._serve_topn(
                request.users,
                n_items=request.n_items,
                exclude_seen=request.exclude_seen,
                shard_size=shard_size,
                session=session,
                return_scores=request.with_scores,
            )
        else:
            rankings, scores, _n_shards, generation = self._serve_folded(
                [list(row) for row in request.interactions],
                n_items=request.n_items,
                exclude_seen=request.exclude_seen,
                n_sweeps=request.n_sweeps,
                tolerance=request.tolerance,
                shard_size=shard_size,
                session=session,
                return_scores=request.with_scores,
            )
        return RecommendResponse(
            rankings=rankings,
            scores=scores,
            generation=generation,
            serve_ms=(time.perf_counter() - started) * 1000.0,
            batch_users=request.n_rows,
        )

    def _recommend_mixed(
        self,
        request: RecommendRequest,
        session: Optional[ServingSession],
        shard_size: Optional[int],
        started: float,
    ) -> RecommendResponse:
        """Serve a top-N request mixing published and post-ingest users.

        Users inside the published generation's corpus go down the normal
        sharded top-N path; users ingested after it are folded in from their
        accumulated interactions (restricted to the published catalogue —
        ingested *items* only enter rankings after a refit + update).  Both
        halves run against one pinned generation — a caller-provided session
        or a private one — and the results are merged back into request
        order, so a mid-flight :meth:`update` can never split the batch
        across model versions.
        """
        own = self.serving_session() if session is None else None
        active = session if own is None else own
        try:
            engine = active._engine
            limit = engine.train_matrix.n_users
            users = [int(user) for user in request.users]
            known_idx = [i for i, user in enumerate(users) if user < limit]
            fresh_idx = [i for i, user in enumerate(users) if user >= limit]
            matrix = self.train_matrix
            if matrix is None or not hasattr(matrix, "items_of_user"):
                raise ConfigurationError(
                    "serving post-ingest users requires the runtime's stored "
                    "InteractionMatrix corpus"
                )
            rankings: List[Optional[np.ndarray]] = [None] * len(users)
            scores: Optional[List[Optional[np.ndarray]]] = (
                [None] * len(users) if request.with_scores else None
            )
            generation = active.generation
            if known_idx:
                _ul, known_rankings, known_scores, _ns, generation = self._serve_topn(
                    [users[i] for i in known_idx],
                    n_items=request.n_items,
                    exclude_seen=request.exclude_seen,
                    shard_size=shard_size,
                    session=active,
                    return_scores=request.with_scores,
                )
                for position, index in enumerate(known_idx):
                    rankings[index] = known_rankings[position]
                    if scores is not None:
                        scores[index] = known_scores[position]
            if fresh_idx:
                catalogue = engine.n_items
                interactions = []
                for index in fresh_idx:
                    row = matrix.items_of_user(users[index])
                    interactions.append([int(item) for item in row if item < catalogue])
                folded_rankings, folded_scores, _ns, generation = self._serve_folded(
                    interactions,
                    n_items=request.n_items,
                    exclude_seen=request.exclude_seen,
                    n_sweeps=request.n_sweeps,
                    tolerance=request.tolerance,
                    shard_size=shard_size,
                    session=active,
                    return_scores=request.with_scores,
                )
                for position, index in enumerate(fresh_idx):
                    rankings[index] = folded_rankings[position]
                    if scores is not None:
                        scores[index] = folded_scores[position]
        finally:
            if own is not None:
                own.release()
        return RecommendResponse(
            rankings=rankings,
            scores=scores,
            generation=generation,
            serve_ms=(time.perf_counter() - started) * 1000.0,
            batch_users=request.n_rows,
        )

    def topn(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
        shard_size: Optional[int] = None,
        session: Optional[ServingSession] = None,
    ) -> BatchServingResult:
        """Deprecated: use :meth:`recommend` with ``RecommendRequest(users=...)``."""
        warnings.warn(
            "RecommenderRuntime.topn() is deprecated; use "
            "runtime.recommend(RecommendRequest(users=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        user_list, rankings, _scores, n_shards, _generation = self._serve_topn(
            users,
            n_items=n_items,
            exclude_seen=exclude_seen,
            shard_size=shard_size,
            session=session,
        )
        return BatchServingResult(users=user_list, rankings=rankings, n_shards=n_shards)

    def recommend_folded(
        self,
        interactions,
        n_items: int = 10,
        exclude_seen: bool = True,
        n_sweeps: int = 30,
        tolerance: float = 1e-8,
        shard_size: Optional[int] = None,
        session: Optional[ServingSession] = None,
    ) -> TopNResult:
        """Deprecated: use :meth:`recommend` with ``RecommendRequest(interactions=...)``."""
        warnings.warn(
            "RecommenderRuntime.recommend_folded() is deprecated; use "
            "runtime.recommend(RecommendRequest(interactions=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        rankings, _scores, _n_shards, _generation = self._serve_folded(
            interactions,
            n_items=n_items,
            exclude_seen=exclude_seen,
            n_sweeps=n_sweeps,
            tolerance=tolerance,
            shard_size=shard_size,
            session=session,
        )
        return rankings

    @staticmethod
    def _flatten_shards(shard_results, return_scores: bool):
        """Concatenate per-shard results, splitting off scores when present.

        Shard workers return flat :class:`TopNResult` blocks (score block
        embedded when requested), so flattening is a single vstack of
        contiguous arrays.  The legacy list/tuple shard shape is still
        accepted for third-party executors shipping older workers.
        """
        shard_results = list(shard_results)
        if all(isinstance(result, TopNResult) for result in shard_results):
            merged = TopNResult.concat(shard_results)
            return merged, (merged.score_rows() if return_scores else None)
        rankings: List[np.ndarray] = []
        scores: List[np.ndarray] = []
        for result in shard_results:
            if return_scores:
                rankings.extend(result[0])
                scores.extend(result[1])
            else:
                rankings.extend(result)
        return rankings, (scores if return_scores else None)

    def _serve_topn(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
        shard_size: Optional[int] = None,
        session: Optional[ServingSession] = None,
        return_scores: bool = False,
    ) -> Tuple[List[int], TopNResult, Optional[List[np.ndarray]], int, int]:
        """Sharded known-users top-N over the warm pool.

        On the shared path each task carries only the published engine's
        descriptors and its user shard; rankings are ``np.array_equal`` to
        the single-process engine's for every user.
        """
        self._check_open()
        check_positive_int(n_items, "n_items")
        if session is None:
            engine, spec, _model, generation = self._serving_snapshot()
        else:
            engine, spec, _model, generation = session._acquire_for_call()
        try:
            user_list = [int(user) for user in users]
            if shard_size is None:
                shard_size = engine.chunk_size
            check_positive_int(shard_size, "shard_size")
            shards = [
                user_list[start : start + shard_size]
                for start in range(0, len(user_list), shard_size)
            ]
            if spec is not None and shards:
                tasks = [
                    (spec, shard, n_items, exclude_seen, return_scores)
                    for shard in shards
                ]
                shard_results = self._executor.starmap(_topn_shard, tasks)
                stats = self._shared_stats(spec, generation, tasks, key=lambda t: len(t[1]))
            else:
                shard_results = self._scheduler.starmap(
                    _serve_shard,
                    [
                        (engine, shard, n_items, exclude_seen, return_scores)
                        for shard in shards
                    ],
                )
                stats = ServingStats(path="local", n_shards=len(shards))
        finally:
            # Per-call reference: taken by _serving_snapshot on the direct
            # path and by _acquire_for_call on the session path (the session
            # keeps its own reference until it is released).
            self._release_spec(spec)
        rankings, scores = self._flatten_shards(shard_results, return_scores)
        self._record_serving_call(stats)
        return user_list, rankings, scores, len(shards), generation

    def _serve_folded(
        self,
        interactions,
        n_items: int = 10,
        exclude_seen: bool = True,
        n_sweeps: int = 30,
        tolerance: float = 1e-8,
        shard_size: Optional[int] = None,
        session: Optional[ServingSession] = None,
        return_scores: bool = False,
    ) -> Tuple[TopNResult, Optional[List[np.ndarray]], int, int]:
        """Cold-start serving through the runtime.

        Folds the unseen interaction vectors into the **published** model
        version — the one the top-N path serves, even if a later :meth:`fit`
        has since replaced :attr:`model` (or the one pinned by ``session``
        when given) — on the warm backend (all backends sweep
        bit-identically, so the folded factors match a vectorized fold
        exactly), scores them, and ranks: on the shared path the score block
        and the seen-mask are published once for the call and each shard
        task ranks its ``(row_range)`` from descriptors; rankings equal
        :func:`repro.serving.fold_in.recommend_folded` exactly.
        """
        self._check_open()
        check_positive_int(n_items, "n_items")
        check_positive_int(n_sweeps, "n_sweeps")
        if session is None:
            engine, spec, model, generation = self._serving_snapshot()
        else:
            engine, spec, model, generation = session._acquire_for_call()
        try:
            if engine.factors is None:
                raise ConfigurationError(
                    "cold-start serving requires a factor-path model version"
                )
            csr = _interactions_to_csr(interactions, engine.n_items)
            scores = fold_in_scores(
                engine,
                csr,
                model=model,  # the publish-time solver snapshot (or None)
                n_sweeps=n_sweeps,
                tolerance=tolerance,
                backend=self._backend,
            )
            n_rows = scores.shape[0]
            if spec is None or n_rows == 0:
                self._record_serving_call(ServingStats(path="local", n_shards=1))
                ranked = engine.rank_scored(
                    scores,
                    n_items=n_items,
                    seen=csr if exclude_seen else None,
                    return_scores=return_scores,
                    writable=True,  # the fold-in block is this call's own
                )
                if return_scores:
                    ranked = ranked[0]  # flat result embeds the score block
                rankings, ranked_scores = self._flatten_shards([ranked], return_scores)
                return rankings, ranked_scores, 1, generation
            if shard_size is None:
                shard_size = max(1, -(-n_rows // self.n_shards))
            check_positive_int(shard_size, "shard_size")
            # Non-evictable like the engine segments: these are unpublished
            # in the ``finally`` below, so pinning them costs nothing, and a
            # silent LRU eviction under concurrent-call pressure would fail
            # a worker's attach mid-call.
            call_key = ("folded", next_generation())
            scores_spec = self._executor.publish(
                call_key + ("scores",), scores, evictable=False
            )
            seen_spec = (
                publish_csr(self._executor, csr, call_key + ("seen",), evictable=False)
                if exclude_seen
                else None
            )
            try:
                ranges = [
                    (start, min(start + shard_size, n_rows))
                    for start in range(0, n_rows, shard_size)
                ]
                tasks = [
                    (spec, scores_spec, seen_spec, start, stop, n_items, return_scores)
                    for start, stop in ranges
                ]
                shard_results = self._executor.starmap(_rank_scored_shard, tasks)
            finally:
                self._executor.unpublish(call_key + ("scores",))
                if seen_spec is not None:
                    for field in ("data", "indices", "indptr"):
                        self._executor.unpublish(call_key + ("seen", field))
        finally:
            # Per-call reference, exactly as in the top-N path.
            self._release_spec(spec)
        self._record_serving_call(
            self._shared_stats(spec, generation, tasks, key=lambda task: 0)
        )
        rankings, ranked_scores = self._flatten_shards(shard_results, return_scores)
        return rankings, ranked_scores, len(tasks), generation

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release everything the runtime owns; idempotent.

        An owned (name-built) executor is drained — in-flight serving tasks
        finish — and then every shared-memory segment it holds is unlinked,
        leaving ``/dev/shm`` clean.  A borrowed executor instance is left
        running; only the runtime's own publications are unlinked from it.
        """
        if self._closed:
            return
        self._closed = True
        with self._swap_lock:
            candidates = [self._published, *self._retired.values()]
            self._published = None
            self._published_model = None
            self._retired.clear()
            self._engine = None
            idle, busy = [], []
            for spec in candidates:
                if spec is None:
                    continue
                (busy if self._inflight.get(spec.generation) else idle).append(spec)
            # Generations with serving calls still in flight go back on the
            # retired list: _release_spec unlinks each when its last call
            # drains, exactly like a publish-time swap.  (Only reachable on
            # a borrowed executor — the owned path below drains the pool
            # before any unlink.)
            for spec in busy:
                self._retired[spec.generation] = spec
        if not self._scheduler.owns_executor:
            # Borrowed executor: remove exactly the runtime's idle
            # publications and leave everything else (the backend's shutdown
            # below does the same for its plan/factor slots).
            for spec in idle:
                unpublish_engine(self._executor, spec)
        self._backend.shutdown()
        self._scheduler.shutdown()

    def __enter__(self) -> "RecommenderRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _serving_snapshot(self):
        """One consistent (engine, spec, model, generation) view for a serving call.

        When the snapshot carries a published spec, the call also takes a
        reference on its generation; the caller **must** pair this with
        :meth:`_release_spec` (``try``/``finally``) so a retired generation
        is unlinked exactly when its last call drains.
        """
        with self._swap_lock:
            engine = self._engine
            spec = self._published
            model = self._published_model
            generation = self.generation
            if spec is not None:
                self._inflight[spec.generation] = (
                    self._inflight.get(spec.generation, 0) + 1
                )
        if engine is None:
            raise NotFittedError(
                "no model version is published; call runtime.publish() first"
            )
        return engine, spec, model, generation

    def _acquire_spec(self, spec: Optional[SharedEngineSpec]) -> None:
        """Take one additional in-flight reference on an already-held generation.

        Only valid while another reference is live (a session's own), which
        the session's lock guarantees: the generation cannot have been
        unlinked between the check and the increment.
        """
        if spec is None:
            return
        with self._swap_lock:
            self._inflight[spec.generation] = (
                self._inflight.get(spec.generation, 0) + 1
            )

    def _release_spec(self, spec: Optional[SharedEngineSpec]) -> None:
        """Drop a serving call's generation reference; unlink if retired + idle."""
        if spec is None:
            return
        retired = None
        with self._swap_lock:
            count = self._inflight.get(spec.generation, 0) - 1
            if count > 0:
                self._inflight[spec.generation] = count
            else:
                self._inflight.pop(spec.generation, None)
                retired = self._retired.pop(spec.generation, None)
        if retired is not None:
            unpublish_engine(self._executor, retired)

    def _record_serving_call(self, stats: ServingStats) -> None:
        """Count one completed serving dispatch and expose its stats."""
        with self._swap_lock:
            self.serving_calls += 1
            self.last_serving_stats = stats

    def _shared_stats(self, spec, generation, tasks, key) -> ServingStats:
        """Stats for a shared-path call, pickling one representative task.

        ``starmap`` already serialised every task; re-pickling the whole
        list just for a statistic would double that work on the hot path,
        so only the task ``key`` selects as largest is measured.
        """
        return ServingStats(
            path="shared",
            n_shards=len(tasks),
            generation=generation,
            spec_bytes=len(pickle.dumps(spec)),
            max_task_bytes=len(pickle.dumps(max(tasks, key=key))),
        )

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the runtime is closed")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"generation={self.generation}"
        return (
            f"{type(self).__name__}(executor={self._scheduler.executor_name!r}, "
            f"n_shards={self.n_shards}, {state})"
        )
