"""Long-lived recommender runtime (the paper's persistent deployment shape).

:class:`RecommenderRuntime` owns one warm executor for its whole life and
threads it through training (warm-pool fits/refits), publication (factor
matrices and the seen-mask in shared memory, once per model version) and
serving (process shards carry only descriptors).  Its single serving
entrypoint is :meth:`~RecommenderRuntime.recommend`, which takes a
:class:`~repro.api.RecommendRequest` and returns a
:class:`~repro.api.RecommendResponse`; see :mod:`repro.runtime.service`.

:class:`BatchingFrontEnd` sits in front of a runtime and coalesces many
small concurrent requests into micro-batches under a latency bound —
static, or re-tuned live by an :class:`AdaptiveDelayController` against a
queue-latency SLO — serving each batch against one pinned model version
(:class:`ServingSession`); see :mod:`repro.runtime.batching` and
:mod:`repro.runtime.adaptive`.

:class:`ServingGateway` (with its :class:`GatewayThread` host and
:class:`GatewayClient` counterpart) puts an asyncio socket front door on
the batcher — newline-delimited JSON frames of the same request/response
dataclasses, with per-tenant weighted fair queueing
(:class:`WeightedFairQueue`) under backpressure; see
:mod:`repro.runtime.gateway`.
"""

from repro.api import BatchedResponse, RecommendRequest, RecommendResponse
from repro.runtime.adaptive import AdaptiveDelayController
from repro.runtime.batching import BatchingFrontEnd, BatchingStats
from repro.runtime.fairness import WeightedFairQueue
from repro.runtime.gateway import (
    GatewayClient,
    GatewayError,
    GatewayThread,
    ServingGateway,
)
from repro.runtime.service import (
    IngestStats,
    RecommenderRuntime,
    ServingSession,
    ServingStats,
)

__all__ = [
    "AdaptiveDelayController",
    "BatchedResponse",
    "IngestStats",
    "BatchingFrontEnd",
    "BatchingStats",
    "GatewayClient",
    "GatewayError",
    "GatewayThread",
    "RecommendRequest",
    "RecommendResponse",
    "RecommenderRuntime",
    "ServingGateway",
    "ServingSession",
    "ServingStats",
    "WeightedFairQueue",
]
