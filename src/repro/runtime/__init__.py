"""Long-lived recommender runtime (the paper's persistent deployment shape).

:class:`RecommenderRuntime` owns one warm executor for its whole life and
threads it through training (warm-pool fits/refits), publication (factor
matrices and the seen-mask in shared memory, once per model version) and
serving (process shards carry only descriptors).  See
:mod:`repro.runtime.service` for the full story.
"""

from repro.runtime.service import RecommenderRuntime, ServingStats

__all__ = ["RecommenderRuntime", "ServingStats"]
