"""Long-lived recommender runtime (the paper's persistent deployment shape).

:class:`RecommenderRuntime` owns one warm executor for its whole life and
threads it through training (warm-pool fits/refits), publication (factor
matrices and the seen-mask in shared memory, once per model version) and
serving (process shards carry only descriptors).  See
:mod:`repro.runtime.service` for the full story.

:class:`BatchingFrontEnd` sits in front of a runtime and coalesces many
small concurrent requests into micro-batches under a latency bound, serving
each batch against one pinned model version (:class:`ServingSession`); see
:mod:`repro.runtime.batching`.
"""

from repro.runtime.batching import BatchedResponse, BatchingFrontEnd, BatchingStats
from repro.runtime.service import RecommenderRuntime, ServingSession, ServingStats

__all__ = [
    "BatchedResponse",
    "BatchingFrontEnd",
    "BatchingStats",
    "RecommenderRuntime",
    "ServingSession",
    "ServingStats",
]
