"""Per-tenant weighted fair queueing for the serving gateway.

Under backpressure a plain FIFO admission queue lets one chatty tenant
inflate every other tenant's queue latency: a client that pipelines 10k
requests puts 10k entries in front of the next tenant's single request.
:class:`WeightedFairQueue` arbitrates instead with deficit round-robin
(DRR): tenants with backlog are visited in round-robin order, each visit
tops the tenant's *deficit counter* up by its weight, and the tenant may
dequeue one request per unit of deficit.  With equal weights, admissions
interleave one-per-tenant no matter how deep any tenant's backlog is; a
tenant with weight 3 is granted three admissions per round instead of one.

The queue is a plain synchronous, lock-protected data structure — it never
blocks.  ``pop()`` returns ``None`` when empty; whoever owns the queue (the
gateway's admission pump) decides how to wait.  Fairness only matters when
there *is* a backlog: while the system has capacity for every arrival, the
queue stays empty and admission is effectively FIFO.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive_float


class WeightedFairQueue:
    """Deficit round-robin queue over per-tenant sub-queues.

    Parameters
    ----------
    default_weight:
        Weight for tenants without an explicit entry in ``weights``.
    weights:
        Optional mapping of tenant id to weight (> 0).  A tenant with
        weight ``w`` receives ``w`` admissions per round-robin cycle while
        it has backlog (fractional weights accumulate across cycles: weight
        0.5 means one admission every other cycle).
    """

    def __init__(
        self,
        default_weight: float = 1.0,
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        self.default_weight = check_positive_float(default_weight, "default_weight")
        self._weights: Dict[str, float] = {}
        for tenant, weight in (weights or {}).items():
            self._check_tenant(tenant)
            self._weights[tenant] = check_positive_float(
                weight, f"weight of tenant {tenant!r}"
            )
        self._queues: Dict[str, Deque] = {}
        # Round-robin ring of tenants with backlog, plus a membership set
        # for O(1) "already in the ring" checks on push.
        self._ring: Deque[str] = deque()
        self._ringed: set = set()
        self._deficit: Dict[str, float] = {}
        self._size = 0
        self._lock = threading.Lock()

    @staticmethod
    def _check_tenant(tenant) -> None:
        if not isinstance(tenant, str) or not tenant:
            raise ConfigurationError("tenant must be a non-empty string")

    def weight(self, tenant: str) -> float:
        """The admission weight of ``tenant``."""
        return self._weights.get(tenant, self.default_weight)

    def set_weight(self, tenant: str, weight: float) -> None:
        """Set a tenant's weight (applies from its next ring visit)."""
        self._check_tenant(tenant)
        weight = check_positive_float(weight, f"weight of tenant {tenant!r}")
        with self._lock:
            self._weights[tenant] = weight

    # ------------------------------------------------------------------ #
    # Queue protocol
    # ------------------------------------------------------------------ #
    def push(self, tenant: str, item) -> None:
        """Enqueue ``item`` for ``tenant``."""
        self._check_tenant(tenant)
        with self._lock:
            self._queues.setdefault(tenant, deque()).append(item)
            self._size += 1
            if tenant not in self._ringed:
                self._ring.append(tenant)
                self._ringed.add(tenant)

    def pop(self):
        """Dequeue the next item in DRR order; ``None`` when empty.

        A tenant at the ring head spends one unit of deficit per item; when
        its deficit runs dry the ring rotates and the head's deficit is
        topped up by its weight, so sub-unit weights admit every few cycles
        and larger weights admit several items per cycle.
        """
        with self._lock:
            if self._size == 0:
                return None
            while True:
                tenant = self._ring[0]
                queue = self._queues[tenant]
                if not queue:
                    # Tenant drained since its last visit: drop from ring.
                    self._ring.popleft()
                    self._ringed.discard(tenant)
                    self._deficit.pop(tenant, None)
                    continue
                if self._deficit.get(tenant, 0.0) >= 1.0:
                    self._deficit[tenant] -= 1.0
                    item = queue.popleft()
                    self._size -= 1
                    if not queue:
                        self._ring.popleft()
                        self._ringed.discard(tenant)
                        self._deficit.pop(tenant, None)
                    return item
                # Out of deficit: top up by the weight and move to the back
                # of the ring.  Guaranteed to terminate: every visit adds a
                # positive weight, so the head reaches deficit >= 1 after at
                # most ceil(1/weight) rounds.
                self._deficit[tenant] = min(
                    self._deficit.get(tenant, 0.0) + self.weight(tenant),
                    max(1.0, self.weight(tenant)),
                )
                self._ring.rotate(-1)

    def drain(self) -> list:
        """Remove and return every queued item (ring order, then FIFO)."""
        with self._lock:
            items = []
            while self._ring:
                tenant = self._ring.popleft()
                self._ringed.discard(tenant)
                self._deficit.pop(tenant, None)
                items.extend(self._queues[tenant])
                self._queues[tenant].clear()
            self._size = 0
            return items

    def pending(self, tenant: Optional[str] = None) -> int:
        """Queued items for one tenant (or in total with no argument)."""
        with self._lock:
            if tenant is None:
                return self._size
            queue = self._queues.get(tenant)
            return len(queue) if queue else 0

    def tenants(self) -> Tuple[str, ...]:
        """Tenants currently holding backlog."""
        with self._lock:
            return tuple(t for t in self._ring if self._queues.get(t))

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            backlog = {t: len(q) for t, q in self._queues.items() if q}
        return f"{type(self).__name__}(pending={backlog})"
