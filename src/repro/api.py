"""The unified request/response vocabulary every serving entrypoint speaks.

Before this module the runtime had three divergent entrypoints — the
in-process :class:`~repro.serving.engine.TopNEngine`, the
:class:`~repro.runtime.RecommenderRuntime` pair ``topn`` /
``recommend_folded``, and the micro-batcher's ``submit`` /
``submit_folded`` — each with its own ad-hoc argument vocabulary.  The
network gateway would have been a fourth.  Instead, every path now accepts
one typed :class:`RecommendRequest` and produces one typed
:class:`RecommendResponse`:

* ``RecommenderRuntime.recommend(request)`` — blocking, in-process;
* ``BatchingFrontEnd.submit_request(request)`` — a future, micro-batched;
* the asyncio gateway (:mod:`repro.runtime.gateway`) — the same two
  dataclasses as newline-delimited JSON frames over a socket.

Both dataclasses are frozen (a request is hashable configuration plus row
payload; a response is an immutable record of what was served) and carry
JSON codecs, so the wire protocol is exactly ``request.to_json()`` one way
and ``RecommendResponse.from_json`` the other — there is no separate wire
schema to drift out of sync.

A request is **either** known-users top-N (``users=(3, 17, 41)``) **or**
cold-start fold-in (``interactions=((2, 9), (5,))`` — one item-index tuple
per unseen user); exactly one of the two must be given.
:attr:`RecommendRequest.options` is the hashable serving-option key the
micro-batcher groups by: requests whose options match can be merged into
one engine call and scattered back without changing any per-row math.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.serving.results import TopNResult

#: Default tenant for requests that do not name one.  Tenancy only matters
#: under gateway backpressure, where the weighted fair queue arbitrates
#: between tenants; in-process callers can ignore it entirely.
DEFAULT_TENANT = "default"

#: Request fields the dict/JSON codec accepts.  ``from_dict`` is strict —
#: an unknown key is a typed error, not a silent drop — so a client typo
#: (``"nitems"``) fails loudly at the gateway instead of serving defaults.
_REQUEST_FIELDS = (
    "users",
    "interactions",
    "n_items",
    "exclude_seen",
    "with_scores",
    "n_sweeps",
    "tolerance",
    "tenant",
)


def _as_int_tuple(values, name: str) -> Tuple[int, ...]:
    try:
        return tuple(int(value) for value in values)
    except (TypeError, ValueError) as error:
        raise ConfigurationError(f"{name} must be a sequence of integers") from error


@dataclass(frozen=True)
class RecommendRequest:
    """One serving request, identical in-process and on the wire.

    Parameters
    ----------
    users:
        Known-user top-N: indices into the training matrix.  May be empty
        (the response is then empty too).  Mutually exclusive with
        ``interactions``.
    interactions:
        Cold-start fold-in: one item-index tuple per unseen user.  Mutually
        exclusive with ``users``.
    n_items:
        Ranked-list length per row.
    exclude_seen:
        Mask each row's own positives (the deployment default).
    with_scores:
        Also return the model score of every ranked item.
    n_sweeps / tolerance:
        Fold-in solver budget; ignored for known-user requests.
    tenant:
        Client identity for the gateway's weighted fair queue; any
        non-empty string.  Irrelevant to ranking.
    """

    users: Optional[Tuple[int, ...]] = None
    interactions: Optional[Tuple[Tuple[int, ...], ...]] = None
    n_items: int = 10
    exclude_seen: bool = True
    with_scores: bool = False
    n_sweeps: int = 30
    tolerance: float = 1e-8
    tenant: str = DEFAULT_TENANT

    def __post_init__(self) -> None:
        if (self.users is None) == (self.interactions is None):
            raise ConfigurationError(
                "a RecommendRequest takes exactly one of users= (known-user "
                "top-N) or interactions= (cold-start fold-in)"
            )
        if self.users is not None:
            object.__setattr__(self, "users", _as_int_tuple(self.users, "users"))
        else:
            try:
                rows = tuple(
                    _as_int_tuple(row, "interactions") for row in self.interactions
                )
            except TypeError as error:
                raise ConfigurationError(
                    "interactions must be a sequence of item-index sequences "
                    "(one per cold-start user)"
                ) from error
            object.__setattr__(self, "interactions", rows)
        if not isinstance(self.n_items, int) or self.n_items <= 0:
            raise ConfigurationError(f"n_items must be a positive integer, got {self.n_items!r}")
        if not isinstance(self.n_sweeps, int) or self.n_sweeps <= 0:
            raise ConfigurationError(f"n_sweeps must be a positive integer, got {self.n_sweeps!r}")
        object.__setattr__(self, "exclude_seen", bool(self.exclude_seen))
        object.__setattr__(self, "with_scores", bool(self.with_scores))
        try:
            tolerance = float(self.tolerance)
        except (TypeError, ValueError) as error:
            raise ConfigurationError("tolerance must be a number") from error
        if tolerance < 0:
            raise ConfigurationError(f"tolerance must be non-negative, got {tolerance}")
        object.__setattr__(self, "tolerance", tolerance)
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ConfigurationError("tenant must be a non-empty string")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """``"topn"`` (known users) or ``"folded"`` (cold-start fold-in)."""
        return "topn" if self.users is not None else "folded"

    @property
    def rows(self) -> Sequence:
        """The per-row payload: user indices, or one item tuple per row."""
        return self.users if self.users is not None else self.interactions

    @property
    def n_rows(self) -> int:
        """How many ranked lists this request asks for (its batch weight)."""
        return len(self.rows)

    @property
    def options(self) -> Tuple:
        """Hashable serving-option key: requests sharing it may be merged.

        Two requests with equal ``options`` produce identical per-row math,
        so the micro-batcher can flatten their rows into one engine call and
        slice the results back apart.  ``tenant`` is deliberately excluded —
        tenancy governs admission, not ranking.
        """
        common = (self.kind, self.n_items, self.exclude_seen, self.with_scores)
        if self.kind == "folded":
            return common + (self.n_sweeps, self.tolerance)
        return common

    def merged_with_rows(self, rows: Sequence) -> "RecommendRequest":
        """A copy of this request carrying ``rows`` as its payload.

        The micro-batcher uses this to build the merged request of an
        option-group: same options, the group's flattened rows.
        """
        if self.kind == "topn":
            return replace(self, users=tuple(rows))
        return replace(self, interactions=tuple(tuple(row) for row in rows))

    # ------------------------------------------------------------------ #
    # Codecs
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-ready mapping; exactly what the gateway accepts as a frame."""
        payload: dict = {"n_items": self.n_items, "exclude_seen": self.exclude_seen}
        if self.users is not None:
            payload["users"] = list(self.users)
        else:
            payload["interactions"] = [list(row) for row in self.interactions]
            payload["n_sweeps"] = self.n_sweeps
            payload["tolerance"] = self.tolerance
        if self.with_scores:
            payload["with_scores"] = True
        if self.tenant != DEFAULT_TENANT:
            payload["tenant"] = self.tenant
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict) -> "RecommendRequest":
        """Strict inverse of :meth:`to_dict` (unknown keys are typed errors)."""
        if not isinstance(payload, dict):
            raise ConfigurationError("a request frame must be a JSON object")
        unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown request field(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(_REQUEST_FIELDS)})"
            )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "RecommendRequest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"request is not valid JSON: {error}") from error
        return cls.from_dict(payload)


@dataclass(frozen=True)
class RecommendResponse:
    """What every serving path returns for one :class:`RecommendRequest`.

    Attributes
    ----------
    rankings:
        The ranked item indices, aligned with the request's rows —
        identical to what the in-process engine returns for the same
        request and model version.  Runtime-served responses carry a flat
        :class:`~repro.serving.results.TopNResult`; decoded and merged
        responses may carry the equivalent list of per-row arrays.  Both
        iterate, index and compare row-wise the same way.
    generation:
        The runtime model generation that served the request.  Batched and
        gateway responses pin it per micro-batch, so a response formed
        against version N reports N even when an ``update()`` landed
        mid-flight.
    scores:
        Model scores of the ranked items (same shapes as ``rankings``) when
        the request asked ``with_scores``; ``None`` otherwise.
    queue_ms:
        Time the request waited between submission and dispatch (0 for the
        unbatched in-process path).
    serve_ms:
        Time spent actually serving the (possibly merged) engine call.
    batch_id / batch_requests / batch_users:
        Which micro-batch the request rode, how many requests it coalesced,
        and its total merged rows (occupancy).  ``batch_requests == 1`` for
        the unbatched path.
    """

    rankings: Union[TopNResult, List[np.ndarray]]
    generation: int
    scores: Optional[List[np.ndarray]] = None
    queue_ms: float = 0.0
    serve_ms: float = 0.0
    batch_id: int = 0
    batch_requests: int = 1
    batch_users: int = 0

    @property
    def queue_seconds(self) -> float:
        """Queue wait in seconds (compatibility with the pre-gateway API)."""
        return self.queue_ms / 1000.0

    # ------------------------------------------------------------------ #
    # Codecs
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        # Flat results serialise through one vectorised tolist per block
        # instead of a Python int() per ranked item.
        if isinstance(self.rankings, TopNResult):
            rankings = self.rankings.to_lists()
        else:
            rankings = [[int(item) for item in row] for row in self.rankings]
        payload = {
            "rankings": rankings,
            "generation": int(self.generation),
            "queue_ms": float(self.queue_ms),
            "serve_ms": float(self.serve_ms),
            "batch_id": int(self.batch_id),
            "batch_requests": int(self.batch_requests),
            "batch_users": int(self.batch_users),
        }
        if self.scores is not None:
            payload["scores"] = [
                np.asarray(row, dtype=float).tolist() for row in self.scores
            ]
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict) -> "RecommendResponse":
        """Lenient inverse of :meth:`to_dict`.

        Unknown keys are ignored so a response embedded in a larger frame
        (the gateway adds ``id`` and ``ok``) decodes directly.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError("a response frame must be a JSON object")
        scores = payload.get("scores")
        return cls(
            # Decoded straight into the flat container: one packed block
            # instead of one array object per row, and row-wise consumers
            # (iteration, indexing, equality) behave like the old list.
            rankings=TopNResult.from_rows(
                [np.asarray(row, dtype=np.int64) for row in payload.get("rankings", [])]
            ),
            generation=int(payload.get("generation", 0)),
            scores=(
                None
                if scores is None
                else [np.asarray(row, dtype=float) for row in scores]
            ),
            queue_ms=float(payload.get("queue_ms", 0.0)),
            serve_ms=float(payload.get("serve_ms", 0.0)),
            batch_id=int(payload.get("batch_id", 0)),
            batch_requests=int(payload.get("batch_requests", 1)),
            batch_users=int(payload.get("batch_users", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RecommendResponse":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"response is not valid JSON: {error}") from error
        return cls.from_dict(payload)


# Backwards-compatible name: the micro-batcher's futures used to resolve to
# a BatchedResponse; they now resolve to the unified RecommendResponse,
# which carries every field the old dataclass had (queue_seconds included).
BatchedResponse = RecommendResponse

__all__ = [
    "DEFAULT_TENANT",
    "BatchedResponse",
    "RecommendRequest",
    "RecommendResponse",
]
