"""Plain-text table rendering for the benchmark harness.

The benchmarks print the paper's tables next to the measured values; this
module provides a small dependency-free formatter for those reports.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _cell(value: object, precision: int) -> str:
    """Render a single cell; floats are rounded to ``precision`` digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
) -> str:
    """Format ``rows`` as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Iterable of rows; each row must have the same length as ``headers``.
    precision:
        Number of decimal digits used for float cells.

    Returns
    -------
    str
        A multi-line string with a header row, a separator and one line per
        data row, columns padded to equal width.
    """
    rendered: List[List[str]] = [[str(header) for header in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but table has {len(headers)} columns"
            )
        rendered.append([_cell(value, precision) for value in row])

    widths = [max(len(line[col]) for line in rendered) for col in range(len(headers))]
    lines = []
    for index, line in enumerate(rendered):
        padded = "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        lines.append(padded.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object], precision: int = 4) -> str:
    """Format a named (x, y) series as a two-column table.

    Used by the figure benchmarks to print the curves the paper plots.
    """
    return name + "\n" + format_table(["x", "y"], list(zip(xs, ys)), precision=precision)
