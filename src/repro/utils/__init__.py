"""Shared utilities: validation helpers, RNG handling, timers and tables."""

from repro.utils.rng import ensure_rng
from repro.utils.timers import Timer, TimingLog
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_positive_int,
    check_non_negative_float,
    check_probability,
    check_unit_interval_open,
)

__all__ = [
    "ensure_rng",
    "Timer",
    "TimingLog",
    "format_table",
    "check_positive_int",
    "check_non_negative_float",
    "check_probability",
    "check_unit_interval_open",
]
