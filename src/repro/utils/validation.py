"""Light-weight argument validation helpers.

These helpers raise :class:`repro.exceptions.ConfigurationError` with a
message that names the offending parameter, which keeps the constructors of
the estimators small and their error messages consistent.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return int(value)


def check_non_negative_float(value: Any, name: str) -> float:
    """Validate that ``value`` is a finite float greater than or equal to zero."""
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a non-negative number, got {value!r}") from exc
    if not np.isfinite(result) or result < 0:
        raise ConfigurationError(f"{name} must be a non-negative number, got {value!r}")
    return result


def check_positive_float(value: Any, name: str) -> float:
    """Validate that ``value`` is a finite float strictly greater than zero."""
    result = check_non_negative_float(value, name)
    if result == 0:
        raise ConfigurationError(f"{name} must be strictly positive, got {value!r}")
    return result


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    result = check_non_negative_float(value, name)
    if result > 1:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return result


def check_unit_interval_open(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the open interval (0, 1).

    The Armijo line-search constants ``sigma`` and ``beta`` of the paper are
    required to lie strictly inside the unit interval.
    """
    result = check_non_negative_float(value, name)
    if result <= 0 or result >= 1:
        raise ConfigurationError(f"{name} must lie in the open interval (0, 1), got {value!r}")
    return result


def check_array_2d(array: Any, name: str) -> np.ndarray:
    """Validate that ``array`` is a finite two-dimensional float array.

    float32 and float64 inputs keep their dtype (so reduced-precision models
    are not silently upcast); everything else is coerced to float64.
    """
    result = np.asarray(array)
    if result.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        result = np.asarray(array, dtype=float)
    if result.ndim != 2:
        raise ConfigurationError(f"{name} must be two-dimensional, got shape {result.shape}")
    if not np.all(np.isfinite(result)):
        raise ConfigurationError(f"{name} must contain only finite values")
    return result


def check_float_dtype(value: Any, name: str) -> np.dtype:
    """Validate a training dtype spec; only float32 and float64 are supported."""
    try:
        dtype = np.dtype(value)
    except TypeError as exc:
        raise ConfigurationError(f"{name} must be a floating dtype, got {value!r}") from exc
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ConfigurationError(f"{name} must be float32 or float64, got {dtype}")
    return dtype
