"""Random-number-generator helpers.

Every stochastic component of the library accepts a ``random_state`` argument
that may be ``None``, an integer seed, or a fully constructed
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises these three
forms into a ``Generator`` so downstream code never has to branch on the
type of the seed again.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RandomStateLike = Union[None, int, np.random.Generator, np.random.RandomState]


def ensure_rng(random_state: RandomStateLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for non-deterministic behaviour, an ``int`` seed for
        reproducible behaviour, or an already-constructed generator which is
        returned unchanged.  Legacy :class:`numpy.random.RandomState`
        instances are wrapped by drawing a fresh seed from them.

    Returns
    -------
    numpy.random.Generator
        A generator usable by all library components.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.RandomState):
        seed = random_state.randint(0, 2**31 - 1)
        return np.random.default_rng(seed)
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, numpy.random.Generator or "
        f"numpy.random.RandomState, got {type(random_state).__name__}"
    )


def spawn_seeds(random_state: RandomStateLike, count: int) -> list[int]:
    """Draw ``count`` independent integer seeds from ``random_state``.

    Useful when an experiment needs one deterministic seed per repetition
    (e.g. the ten train/test instances used for Table I).
    """
    rng = ensure_rng(random_state)
    return [int(seed) for seed in rng.integers(0, 2**31 - 1, size=count)]
