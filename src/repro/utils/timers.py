"""Timing utilities used by the scalability experiments (Figures 7 and 8).

The paper reports per-iteration running time and likelihood-versus-time
trajectories.  :class:`Timer` measures a single block of code;
:class:`TimingLog` accumulates named measurements over the course of a
training run so the benchmark harness can reconstruct the trajectories.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


class Timer:
    """Context manager measuring wall-clock time of a block.

    Example
    -------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass
class TimingLog:
    """Accumulates named wall-clock measurements.

    Each call to :meth:`record` appends an observation under a name; the
    per-name lists preserve insertion order so they can be interpreted as a
    time series (e.g. seconds per training sweep).
    """

    records: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        """Append ``seconds`` to the series called ``name``."""
        self.records.setdefault(name, []).append(float(seconds))

    def total(self, name: str) -> float:
        """Total seconds accumulated for ``name`` (0.0 when never recorded)."""
        return float(sum(self.records.get(name, [])))

    def mean(self, name: str) -> float:
        """Mean seconds per observation for ``name`` (0.0 when never recorded)."""
        series = self.records.get(name, [])
        if not series:
            return 0.0
        return float(sum(series) / len(series))

    def count(self, name: str) -> int:
        """Number of observations recorded for ``name``."""
        return len(self.records.get(name, []))

    def as_dict(self) -> Dict[str, List[float]]:
        """Return a copy of the raw per-name series."""
        return {name: list(series) for name, series in self.records.items()}
